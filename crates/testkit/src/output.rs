//! Routable output for the bench harness and property runner.
//!
//! The harness used to `println!`/`eprintln!` directly, which made its
//! output impossible to capture and assert on in tests. All harness
//! output now flows through a process-wide sink: by default lines still
//! go to stdout/stderr, but [`set_sink`] (or the [`capture`]
//! convenience) redirects everything to any `Write` implementor.

use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

type Sink = Box<dyn Write + Send>;

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Install `sink` as the destination for all harness output (both the
/// stdout- and stderr-flavoured lines), returning the previous sink.
/// `None` restores the stdout/stderr default.
pub fn set_sink(sink: Option<Sink>) -> Option<Sink> {
    let mut guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::mem::replace(&mut guard, sink)
}

fn write_line(args: fmt::Arguments<'_>, fallback_err: bool) {
    let mut guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match guard.as_mut() {
        Some(sink) => {
            // A broken sink must not panic the harness mid-bench.
            let _ = writeln!(sink, "{args}");
        }
        None if fallback_err => eprintln!("{args}"),
        None => println!("{args}"),
    }
}

/// Write one stdout-flavoured line (report lines, bench results).
pub fn emit_line(args: fmt::Arguments<'_>) {
    write_line(args, false);
}

/// Write one stderr-flavoured line (failure diagnostics).
pub fn emit_err_line(args: fmt::Arguments<'_>) {
    write_line(args, true);
}

/// `println!` through the harness sink.
#[macro_export]
macro_rules! outln {
    ($($t:tt)*) => {
        $crate::output::emit_line(format_args!($($t)*))
    };
}

/// `eprintln!` through the harness sink.
#[macro_export]
macro_rules! errln {
    ($($t:tt)*) => {
        $crate::output::emit_err_line(format_args!($($t)*))
    };
}

/// A shared in-memory buffer usable as a sink.
#[derive(Clone, Debug, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Run `f` with harness output captured, returning `f`'s result and
/// everything written through the sink while it ran. The previous sink
/// is restored afterwards, even on panic.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, String) {
    struct Restore(Option<Sink>);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_sink(self.0.take());
        }
    }

    let buf = SharedBuf::default();
    let previous = set_sink(Some(Box::new(buf.clone())));
    let restore = Restore(previous);
    let r = f();
    drop(restore);
    let bytes = std::mem::take(
        &mut *buf
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    (r, String::from_utf8_lossy(&bytes).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; serialize the tests that swap it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn capture_collects_both_flavours_and_restores() {
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ((), text) = capture(|| {
            crate::outln!("plain {}", 1);
            crate::errln!("error {}", 2);
        });
        assert_eq!(text, "plain 1\nerror 2\n");
        // Restored: no sink installed afterwards.
        assert!(set_sink(None).is_none());
    }

    #[test]
    fn capture_nests() {
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ((), outer) = capture(|| {
            crate::outln!("before");
            let ((), inner) = capture(|| crate::outln!("inner"));
            assert_eq!(inner, "inner\n");
            crate::outln!("after");
        });
        assert_eq!(outer, "before\nafter\n");
    }
}
