//! Dependency-free testing support for the majic workspace.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! `proptest`, `criterion`, or `rand` from a registry. This crate
//! provides the small subset those tests actually need:
//!
//! * [`Rng`] — a deterministic SplitMix64 generator,
//! * [`forall`] — a seeded property-test runner with reproducible
//!   per-case seeds,
//! * [`mod@bench`] — a wall-clock micro-benchmark harness for
//!   `harness = false` bench targets,
//! * [`json`] — a minimal JSON parser for structural assertions
//!   (Chrome trace exports and the like),
//! * [`output`] — a routable `Write` sink the bench harness and
//!   property runner report through, so tests can capture and assert
//!   on their output,
//! * [`fuzzgen`] — a grammar-based MATLAB program generator and
//!   test-case shrinker for the differential fuzzer (`crates/fuzz`).

pub mod bench;
pub mod fuzzgen;
pub mod json;
pub mod output;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic pseudo-random generator (SplitMix64).
///
/// Good statistical quality for test-case generation, trivially seedable
/// and portable: the same seed yields the same case on every platform.
#[derive(Clone, Debug)]
pub struct Rng(u64);

impl Rng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. Panics if the interval is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform in `[lo, hi)` over signed integers.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty interval [{lo}, {hi})");
        lo.wrapping_add((self.next_u64() % ((hi - lo) as u64)) as i64)
    }

    /// Uniform in `[0, n)` as `usize`.
    pub fn below(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)` over `f64`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// A fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Index drawn according to integer weights (proptest's
    /// `prop_oneof![w => …]` analogue).
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        let mut pick = self.range_u64(0, total.max(1));
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if pick < w {
                return i;
            }
            pick -= w;
        }
        weights.len() - 1
    }
}

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Run `body` against `cases` deterministic random cases.
///
/// Each case gets an independent seed derived from the property name and
/// the case index, so a failure report like
/// `property fibber case 17 (seed 0x1234…)` reproduces with
/// `MAJIC_PROP_SEED=0x…` (run just that seed) regardless of case count.
/// `MAJIC_PROP_CASES` overrides the case count globally.
pub fn forall(name: &str, cases: u32, body: impl Fn(&mut Rng)) {
    if let Some(seed) = std::env::var("MAJIC_PROP_SEED")
        .ok()
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok())
    {
        let mut rng = Rng::new(seed);
        body(&mut rng);
        return;
    }
    let cases = env_u64("MAJIC_PROP_CASES").map_or(cases, |c| c as u32);
    for case in 0..cases {
        let seed = fnv1a(name.as_bytes()) ^ (u64::from(case)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            crate::errln!(
                "property `{name}` failed on case {case}/{cases} \
                 (reproduce with MAJIC_PROP_SEED={seed:#x})"
            );
            resume_unwind(payload);
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.range_i64(-5, 20);
            assert!((-5..20).contains(&v));
            let f = rng.range_f64(0.25, 0.75);
            assert!((0.25..0.75).contains(&f));
            let w = rng.weighted(&[4, 1, 1]);
            assert!(w < 3);
        }
    }

    #[test]
    fn forall_runs_all_cases() {
        let count = std::sync::atomic::AtomicU32::new(0);
        forall("counter", 16, |_| {
            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 16);
    }
}
