//! A minimal JSON parser for test assertions (the workspace is offline,
//! so tests cannot pull `serde_json`). Supports the full JSON grammar;
//! numbers are `f64`, objects preserve insertion order.
//!
//! Used to parse Chrome trace-event exports back and assert on their
//! structure.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input or trailing garbage.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs: \uD800-\uDBFF followed by low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err("lone high surrogate".to_owned());
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos + 2..self.pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated surrogate pair")?;
                                let lo =
                                    u32::from_str_radix(hex2, 16).map_err(|_| "bad \\u escape")?;
                                self.pos += 6;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u codepoint")?
                            };
                            s.push(c);
                        }
                        other => return Err(format!("bad escape '\\{}'", char::from(other))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""A\\\"😀""#).unwrap();
        assert_eq!(v, Json::Str("A\\\"😀".to_owned()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }
}
