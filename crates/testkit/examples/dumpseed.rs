//! Print the program the differential fuzzer generates for a seed, in
//! the regression-corpus format — handy for triaging a divergence
//! without running the whole oracle.
//!
//! Usage: `cargo run -p majic-testkit --example dumpseed -- <seed>`

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .expect("usage: dumpseed <seed>")
        .parse()
        .expect("seed must be an integer");
    println!("{}", majic_testkit::fuzzgen::generate(seed).render_corpus());
}
