//! Recursive-descent parser for the MATLAB subset.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::token::{Span, Token, TokenKind};

/// Parse a complete source file (script statements and/or functions).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_source(src: &str) -> Result<SourceFile, ParseError> {
    Parser::new(src)?.source_file()
}

/// Parse a sequence of statements (REPL input).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_statements(src: &str) -> Result<(Vec<Stmt>, u32), ParseError> {
    let mut p = Parser::new(src)?;
    let stmts = p.statement_list(&[])?;
    p.expect(TokenKind::Eof)?;
    Ok((stmts, p.next_id))
}

/// Parse a single expression (tests and REPL probes).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_expression(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.skip_separators();
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

/// Syntactic context, tracked so that `]`-vs-whitespace and `end` get their
/// context-dependent meanings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ctx {
    /// Inside a matrix literal: whitespace separates elements.
    Matrix,
    /// Inside grouping parentheses.
    Paren,
    /// Inside subscript/call parentheses: `end` and `:` are expressions.
    Index,
}

/// The recursive-descent parser. Most users go through [`parse_source`];
/// the type is public so the REPL can parse incrementally.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    ctx: Vec<Ctx>,
}

impl Parser {
    /// A parser over the given source.
    ///
    /// # Errors
    ///
    /// Returns lexical errors immediately.
    pub fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: Lexer::new(src).tokenize()?,
            pos: 0,
            next_id: 0,
            ctx: Vec::new(),
        })
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected '{kind}', found '{}'", self.peek_kind())))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError::new(message, self.peek().span)
    }

    fn in_matrix(&self) -> bool {
        self.ctx.last() == Some(&Ctx::Matrix)
    }

    fn in_index(&self) -> bool {
        self.ctx.contains(&Ctx::Index)
    }

    /// Skip statement separators (newlines, semicolons, commas).
    pub fn skip_separators(&mut self) {
        while matches!(
            self.peek_kind(),
            TokenKind::Newline | TokenKind::Semicolon | TokenKind::Comma
        ) {
            self.bump();
        }
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    /// Parse a full source file.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error.
    pub fn source_file(&mut self) -> Result<SourceFile, ParseError> {
        let mut file = SourceFile::default();
        self.skip_separators();
        // Script statements come before any function definitions.
        while !self.at(&TokenKind::Eof) && !self.at(&TokenKind::Function) {
            file.script.push(self.statement()?);
            self.skip_separators();
        }
        while self.at(&TokenKind::Function) {
            file.functions.push(self.function()?);
            self.skip_separators();
        }
        self.expect(TokenKind::Eof)?;
        file.node_count = self.next_id;
        Ok(file)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let start = self.expect(TokenKind::Function)?.span;

        // Header forms:  function name(...)  |  function out = name(...)
        //                function [o1, o2] = name(...)
        let mut outputs = Vec::new();
        let name;
        if self.at(&TokenKind::LBracket) {
            self.bump();
            loop {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => outputs.push(s),
                    other => {
                        return Err(self.error(format!("expected output name, found '{other}'")))
                    }
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket)?;
            self.expect(TokenKind::Assign)?;
            name = self.ident()?;
        } else {
            let first = self.ident()?;
            if self.eat(&TokenKind::Assign) {
                outputs.push(first);
                name = self.ident()?;
            } else {
                name = first;
            }
        }

        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                loop {
                    params.push(self.ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }

        // Body: statements until EOF, the next `function`, or a
        // function-terminating `end` (both pre- and post-2006 styles).
        let body = self.statement_list(&[TokenKind::Function, TokenKind::End])?;
        self.eat(&TokenKind::End); // optional terminator
        let span = start;
        Ok(Function {
            name,
            params,
            outputs,
            body,
            span,
        })
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let t = self.bump();
        match t.kind {
            TokenKind::Ident(s) => Ok(s),
            other => Err(ParseError::new(
                format!("expected identifier, found '{other}'"),
                t.span,
            )),
        }
    }

    /// Parse statements until EOF or one of `stops` (not consumed).
    fn statement_list(&mut self, stops: &[TokenKind]) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            self.skip_separators();
            if self.at(&TokenKind::Eof) || stops.iter().any(|k| self.at(k)) {
                return Ok(stmts);
            }
            stmts.push(self.statement()?);
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek().span;
        match self.peek_kind() {
            TokenKind::If => self.if_statement(),
            TokenKind::While => self.while_statement(),
            TokenKind::For => self.for_statement(),
            TokenKind::Break => {
                self.bump();
                self.end_of_statement()?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Break,
                })
            }
            TokenKind::Continue => {
                self.bump();
                self.end_of_statement()?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Continue,
                })
            }
            TokenKind::Return => {
                self.bump();
                self.end_of_statement()?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Return,
                })
            }
            TokenKind::Global => {
                self.bump();
                let mut names = Vec::new();
                while let TokenKind::Ident(_) = self.peek_kind() {
                    names.push(self.ident()?);
                    self.eat(&TokenKind::Comma);
                }
                self.end_of_statement()?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Global(names),
                })
            }
            TokenKind::Ident(name) if name == "clear" && self.command_syntax_follows() => {
                self.bump();
                let mut names = Vec::new();
                while let TokenKind::Ident(_) = self.peek_kind() {
                    names.push(self.ident()?);
                }
                self.end_of_statement()?;
                Ok(Stmt {
                    span,
                    kind: StmtKind::Clear(names),
                })
            }
            _ => self.expr_or_assign_statement(),
        }
    }

    /// Does command syntax follow the current identifier? (`clear`, then
    /// either a bare word or the end of the statement — not `=` or `(`.)
    fn command_syntax_follows(&self) -> bool {
        matches!(
            self.peek_at(1).kind,
            TokenKind::Ident(_)
                | TokenKind::Newline
                | TokenKind::Semicolon
                | TokenKind::Comma
                | TokenKind::Eof
        )
    }

    fn end_of_statement(&mut self) -> Result<bool, ParseError> {
        match self.peek_kind() {
            TokenKind::Semicolon => {
                self.bump();
                Ok(true)
            }
            TokenKind::Newline | TokenKind::Comma => {
                self.bump();
                Ok(false)
            }
            TokenKind::Eof
            | TokenKind::End
            | TokenKind::Else
            | TokenKind::Elseif
            | TokenKind::Function => Ok(false),
            other => Err(self.error(format!("expected end of statement, found '{other}'"))),
        }
    }

    fn if_statement(&mut self) -> Result<Stmt, ParseError> {
        let span = self.expect(TokenKind::If)?.span;
        let mut branches = Vec::new();
        let cond = self.expr()?;
        self.skip_separators();
        let body = self.statement_list(&[TokenKind::End, TokenKind::Else, TokenKind::Elseif])?;
        branches.push((cond, body));
        let mut else_body = None;
        loop {
            if self.eat(&TokenKind::Elseif) {
                let cond = self.expr()?;
                self.skip_separators();
                let body =
                    self.statement_list(&[TokenKind::End, TokenKind::Else, TokenKind::Elseif])?;
                branches.push((cond, body));
            } else if self.eat(&TokenKind::Else) {
                self.skip_separators();
                else_body = Some(self.statement_list(&[TokenKind::End])?);
                break;
            } else {
                break;
            }
        }
        self.expect(TokenKind::End)?;
        Ok(Stmt {
            span,
            kind: StmtKind::If {
                branches,
                else_body,
            },
        })
    }

    fn while_statement(&mut self) -> Result<Stmt, ParseError> {
        let span = self.expect(TokenKind::While)?.span;
        let cond = self.expr()?;
        self.skip_separators();
        let body = self.statement_list(&[TokenKind::End])?;
        self.expect(TokenKind::End)?;
        Ok(Stmt {
            span,
            kind: StmtKind::While { cond, body },
        })
    }

    fn for_statement(&mut self) -> Result<Stmt, ParseError> {
        let span = self.expect(TokenKind::For)?.span;
        let var = self.ident()?;
        let var_id = self.fresh_id();
        self.expect(TokenKind::Assign)?;
        let iter = self.expr()?;
        self.skip_separators();
        let body = self.statement_list(&[TokenKind::End])?;
        self.expect(TokenKind::End)?;
        Ok(Stmt {
            span,
            kind: StmtKind::For {
                var,
                var_id,
                iter,
                body,
            },
        })
    }

    fn expr_or_assign_statement(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek().span;

        // `[a, b] = f(...)` multi-assignment?
        if self.at(&TokenKind::LBracket) {
            if let Some(stmt) = self.try_multi_assign(span)? {
                return Ok(stmt);
            }
        }

        let expr = self.expr()?;
        if self.at(&TokenKind::Assign) {
            self.bump();
            let lhs = self.expr_to_lvalue(expr)?;
            let rhs = self.expr()?;
            let suppressed = self.end_of_statement()?;
            return Ok(Stmt {
                span,
                kind: StmtKind::Assign {
                    lhs,
                    rhs,
                    suppressed,
                },
            });
        }
        let suppressed = self.end_of_statement()?;
        Ok(Stmt {
            span,
            kind: StmtKind::Expr { expr, suppressed },
        })
    }

    /// Try to parse `[a, b, …] = callee(args)`. Rewinds and returns `None`
    /// when the bracket turns out to be a matrix literal expression.
    fn try_multi_assign(&mut self, span: Span) -> Result<Option<Stmt>, ParseError> {
        let save_pos = self.pos;
        let save_id = self.next_id;
        let attempt = (|| -> Result<Option<Stmt>, ParseError> {
            self.expect(TokenKind::LBracket)?;
            let mut lhs = Vec::new();
            loop {
                if !matches!(self.peek_kind(), TokenKind::Ident(_)) {
                    return Ok(None);
                }
                let lv_span = self.peek().span;
                let name = self.ident()?;
                if self.at(&TokenKind::LParen) {
                    let args = self.apply_args()?;
                    lhs.push(LValue::Index {
                        name,
                        args,
                        id: self.fresh_id(),
                        span: lv_span,
                    });
                } else {
                    lhs.push(LValue::Var {
                        name,
                        id: self.fresh_id(),
                        span: lv_span,
                    });
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            if !self.eat(&TokenKind::RBracket) {
                return Ok(None);
            }
            if !self.eat(&TokenKind::Assign) {
                return Ok(None);
            }
            let callee = self.ident()?;
            let id = self.fresh_id();
            let args = if self.at(&TokenKind::LParen) {
                self.apply_args()?
            } else {
                Vec::new()
            };
            let suppressed = self.end_of_statement()?;
            Ok(Some(Stmt {
                span,
                kind: StmtKind::MultiAssign {
                    lhs,
                    id,
                    callee,
                    args,
                    suppressed,
                },
            }))
        })();
        match attempt {
            Ok(Some(stmt)) => Ok(Some(stmt)),
            Ok(None) | Err(_) => {
                self.pos = save_pos;
                self.next_id = save_id;
                Ok(None)
            }
        }
    }

    fn expr_to_lvalue(&mut self, expr: Expr) -> Result<LValue, ParseError> {
        match expr.kind {
            ExprKind::Ident(name) => Ok(LValue::Var {
                name,
                id: expr.id,
                span: expr.span,
            }),
            ExprKind::Apply { callee, args } => Ok(LValue::Index {
                name: callee,
                args,
                id: expr.id,
                span: expr.span,
            }),
            _ => Err(ParseError::new(
                "invalid assignment target".to_owned(),
                expr.span,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    /// Parse one expression.
    ///
    /// # Errors
    ///
    /// Returns the first syntax error.
    pub fn expr(&mut self) -> Result<Expr, ParseError> {
        self.short_or()
    }

    fn mk(&mut self, span: Span, kind: ExprKind) -> Expr {
        Expr {
            id: self.fresh_id(),
            span,
            kind,
        }
    }

    fn binary_level(
        &mut self,
        ops: &[(TokenKind, BinOp)],
        next: fn(&mut Parser) -> Result<Expr, ParseError>,
    ) -> Result<Expr, ParseError> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.at(tok) {
                    // Matrix-literal whitespace rule: `[1 -2]` separates
                    // elements; `[1 - 2]` and `[1-2]` are binary.
                    if self.in_matrix()
                        && matches!(tok, TokenKind::Plus | TokenKind::Minus)
                        && self.peek().space_before
                        && !self.peek_at(1).space_before
                        && self.peek_at(1).kind.starts_expression()
                    {
                        break 'outer;
                    }
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.merge(rhs.span);
                    lhs = self.mk(
                        span,
                        ExprKind::Binary {
                            op: *op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn short_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::PipePipe, BinOp::ShortOr)], Parser::short_and)
    }

    fn short_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::AmpAmp, BinOp::ShortAnd)], Parser::elem_or)
    }

    fn elem_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::Pipe, BinOp::Or)], Parser::elem_and)
    }

    fn elem_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(&[(TokenKind::Amp, BinOp::And)], Parser::comparison)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Le, BinOp::Le),
                (TokenKind::Lt, BinOp::Lt),
                (TokenKind::Ge, BinOp::Ge),
                (TokenKind::Gt, BinOp::Gt),
                (TokenKind::EqEq, BinOp::Eq),
                (TokenKind::Ne, BinOp::Ne),
            ],
            Parser::range,
        )
    }

    fn range(&mut self) -> Result<Expr, ParseError> {
        let start = self.additive()?;
        if !self.at(&TokenKind::Colon) {
            return Ok(start);
        }
        self.bump();
        let second = self.additive()?;
        if self.at(&TokenKind::Colon) {
            self.bump();
            let stop = self.additive()?;
            let span = start.span.merge(stop.span);
            Ok(self.mk(
                span,
                ExprKind::Range {
                    start: Box::new(start),
                    step: Some(Box::new(second)),
                    stop: Box::new(stop),
                },
            ))
        } else {
            let span = start.span.merge(second.span);
            Ok(self.mk(
                span,
                ExprKind::Range {
                    start: Box::new(start),
                    step: None,
                    stop: Box::new(second),
                },
            ))
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Plus, BinOp::Add),
                (TokenKind::Minus, BinOp::Sub),
            ],
            Parser::multiplicative,
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            &[
                (TokenKind::Star, BinOp::Mul),
                (TokenKind::Slash, BinOp::Div),
                (TokenKind::Backslash, BinOp::LeftDiv),
                (TokenKind::DotStar, BinOp::ElemMul),
                (TokenKind::DotSlash, BinOp::ElemDiv),
                (TokenKind::DotBackslash, BinOp::ElemLeftDiv),
            ],
            Parser::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        let op = match self.peek_kind() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Plus => Some(UnOp::Plus),
            TokenKind::Tilde => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            let span = span.merge(operand.span);
            Ok(self.mk(
                span,
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
            ))
        } else {
            self.power()
        }
    }

    fn power(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.postfix()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Caret => BinOp::Pow,
                TokenKind::DotCaret => BinOp::ElemPow,
                _ => break,
            };
            self.bump();
            // The exponent may carry unary signs: `2^-3`.
            let rhs = if matches!(
                self.peek_kind(),
                TokenKind::Minus | TokenKind::Plus | TokenKind::Tilde
            ) {
                self.unary()?
            } else {
                self.postfix()?
            };
            let span = lhs.span.merge(rhs.span);
            lhs = self.mk(
                span,
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
            );
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::Quote => {
                    self.bump();
                    let span = e.span;
                    e = self.mk(
                        span,
                        ExprKind::Transpose {
                            operand: Box::new(e),
                            conjugate: true,
                        },
                    );
                }
                TokenKind::DotQuote => {
                    self.bump();
                    let span = e.span;
                    e = self.mk(
                        span,
                        ExprKind::Transpose {
                            operand: Box::new(e),
                            conjugate: false,
                        },
                    );
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Number { value, imaginary } => {
                self.bump();
                Ok(self.mk(span, ExprKind::Number { value, imaginary }))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(self.mk(span, ExprKind::Str(s)))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    let args = self.apply_args()?;
                    Ok(self.mk(span, ExprKind::Apply { callee: name, args }))
                } else {
                    Ok(self.mk(span, ExprKind::Ident(name)))
                }
            }
            TokenKind::End if self.in_index() => {
                self.bump();
                Ok(self.mk(span, ExprKind::End))
            }
            TokenKind::LParen => {
                self.bump();
                self.ctx.push(Ctx::Paren);
                let e = self.expr();
                self.ctx.pop();
                let e = e?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => self.matrix_literal(span),
            other => Err(self.error(format!("expected expression, found '{other}'"))),
        }
    }

    /// Parse `(arg, arg, …)` subscripts/parameters. Bare `:` is allowed as
    /// a whole argument; `end` is allowed inside arguments.
    fn apply_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(TokenKind::LParen)?;
        self.ctx.push(Ctx::Index);
        let result = (|| {
            let mut args = Vec::new();
            if self.at(&TokenKind::RParen) {
                return Ok(args);
            }
            loop {
                if self.at(&TokenKind::Colon)
                    && matches!(self.peek_at(1).kind, TokenKind::Comma | TokenKind::RParen)
                {
                    let span = self.bump().span;
                    args.push(self.mk(span, ExprKind::Colon));
                } else {
                    args.push(self.expr()?);
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            Ok(args)
        })();
        self.ctx.pop();
        let args = result?;
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn matrix_literal(&mut self, span: Span) -> Result<Expr, ParseError> {
        self.expect(TokenKind::LBracket)?;
        self.ctx.push(Ctx::Matrix);
        let result = (|| {
            let mut rows: Vec<Vec<Expr>> = Vec::new();
            let mut row: Vec<Expr> = Vec::new();
            loop {
                match self.peek_kind() {
                    TokenKind::RBracket => {
                        self.bump();
                        if !row.is_empty() {
                            rows.push(row);
                        }
                        return Ok(rows);
                    }
                    TokenKind::Semicolon | TokenKind::Newline => {
                        self.bump();
                        if !row.is_empty() {
                            rows.push(std::mem::take(&mut row));
                        }
                    }
                    TokenKind::Comma => {
                        self.bump();
                    }
                    TokenKind::Eof => {
                        return Err(self.error("unterminated matrix literal".to_owned()))
                    }
                    _ => {
                        row.push(self.expr()?);
                    }
                }
            }
        })();
        self.ctx.pop();
        let rows = result?;
        Ok(self.mk(span, ExprKind::Matrix(rows)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expression(src).unwrap()
    }

    fn show(e: &Expr) -> String {
        format!("{e}")
    }

    #[test]
    fn precedence_arithmetic() {
        assert_eq!(show(&expr("1+2*3")), "(1 + (2 * 3))");
        assert_eq!(show(&expr("(1+2)*3")), "((1 + 2) * 3)");
        assert_eq!(show(&expr("-2^2")), "(-(2 ^ 2))");
        assert_eq!(show(&expr("2^-3")), "(2 ^ (-3))");
        assert_eq!(show(&expr("a*b+c")), "((a * b) + c)");
    }

    #[test]
    fn power_is_left_associative() {
        assert_eq!(show(&expr("2^3^2")), "((2 ^ 3) ^ 2)");
    }

    #[test]
    fn colon_binds_looser_than_plus() {
        assert_eq!(show(&expr("1:n+1")), "(1:(n + 1))");
        assert_eq!(show(&expr("1:2:9")), "(1:2:9)");
    }

    #[test]
    fn relational_binds_looser_than_colon() {
        assert_eq!(show(&expr("1:3 == 2")), "((1:3) == 2)");
    }

    #[test]
    fn logical_precedence() {
        assert_eq!(show(&expr("a & b | c")), "((a & b) | c)");
        assert_eq!(show(&expr("a < 1 & b > 2")), "((a < 1) & (b > 2))");
    }

    #[test]
    fn transpose_postfix() {
        assert_eq!(show(&expr("A'")), "A'");
        assert_eq!(show(&expr("A'*B")), "(A' * B)");
        assert_eq!(show(&expr("A.'")), "A.'");
    }

    #[test]
    fn apply_and_indexing() {
        assert_eq!(show(&expr("A(2,3)")), "A(2, 3)");
        assert_eq!(show(&expr("A(:)")), "A(:)");
        assert_eq!(show(&expr("A(:,j)")), "A(:, j)");
        assert_eq!(show(&expr("A(1:end)")), "A((1:end))");
        assert_eq!(show(&expr("zeros(n)")), "zeros(n)");
        assert_eq!(show(&expr("f()")), "f()");
    }

    #[test]
    fn end_arithmetic_in_subscripts() {
        assert_eq!(show(&expr("A(end-1)")), "A((end - 1))");
    }

    #[test]
    fn end_outside_subscript_is_an_error() {
        assert!(parse_expression("end + 1").is_err());
    }

    #[test]
    fn matrix_literals() {
        assert_eq!(show(&expr("[1 2; 3 4]")), "[1, 2; 3, 4]");
        assert_eq!(show(&expr("[1, 2, 3]")), "[1, 2, 3]");
        assert_eq!(show(&expr("[]")), "[]");
        assert_eq!(show(&expr("[x; y]")), "[x; y]");
    }

    #[test]
    fn matrix_whitespace_separation() {
        // `[1 -2]` = two elements; `[1 - 2]` and `[1-2]` = one.
        assert_eq!(show(&expr("[1 -2]")), "[1, (-2)]");
        assert_eq!(show(&expr("[1 - 2]")), "[(1 - 2)]");
        assert_eq!(show(&expr("[1-2]")), "[(1 - 2)]");
        // Inside nested parens the rule is suspended.
        assert_eq!(show(&expr("[(1 -2)]")), "[(1 - 2)]");
    }

    #[test]
    fn imaginary_literals() {
        let e = expr("3i");
        assert!(matches!(
            e.kind,
            ExprKind::Number {
                value: v,
                imaginary: true
            } if v == 3.0
        ));
    }

    #[test]
    fn assignment_statements() {
        let (stmts, _) = parse_statements("x = 3;\nA(2) = x").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(matches!(
            &stmts[0].kind,
            StmtKind::Assign {
                lhs: LValue::Var { name, .. },
                suppressed: true,
                ..
            } if name == "x"
        ));
        assert!(matches!(
            &stmts[1].kind,
            StmtKind::Assign {
                lhs: LValue::Index { name, args, .. },
                suppressed: false,
                ..
            } if name == "A" && args.len() == 1
        ));
    }

    #[test]
    fn multi_assignment() {
        let (stmts, _) = parse_statements("[q, r] = qr(A);").unwrap();
        assert!(matches!(
            &stmts[0].kind,
            StmtKind::MultiAssign { lhs, callee, args, .. }
                if lhs.len() == 2 && callee == "qr" && args.len() == 1
        ));
    }

    #[test]
    fn bracket_expression_is_not_multi_assign() {
        let (stmts, _) = parse_statements("[a, b]").unwrap();
        assert!(matches!(&stmts[0].kind, StmtKind::Expr { .. }));
    }

    #[test]
    fn if_elseif_else() {
        let (stmts, _) =
            parse_statements("if x < 1, y = 1; elseif x < 2, y = 2; else y = 3; end").unwrap();
        match &stmts[0].kind {
            StmtKind::If {
                branches,
                else_body,
            } => {
                assert_eq!(branches.len(), 2);
                assert!(else_body.is_some());
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn loops() {
        let (stmts, _) = parse_statements("for p = 1:N, x = x + p; end").unwrap();
        assert!(matches!(&stmts[0].kind, StmtKind::For { var, .. } if var == "p"));
        let (stmts, _) = parse_statements("while x < 10\n x = x + 1;\nend").unwrap();
        assert!(matches!(&stmts[0].kind, StmtKind::While { .. }));
    }

    #[test]
    fn clear_command_syntax() {
        let (stmts, _) = parse_statements("clear\nclear x y\n").unwrap();
        assert_eq!(stmts[0].kind, StmtKind::Clear(vec![]));
        assert_eq!(
            stmts[1].kind,
            StmtKind::Clear(vec!["x".to_owned(), "y".to_owned()])
        );
    }

    #[test]
    fn clear_as_variable_still_works() {
        let (stmts, _) = parse_statements("clear = 5;").unwrap();
        assert!(matches!(&stmts[0].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn function_definitions() {
        let src = "function [m, s] = stats(x, n)\nm = sum(x) / n;\ns = 0;\nreturn\n";
        let f = parse_source(src).unwrap();
        let f = &f.functions[0];
        assert_eq!(f.name, "stats");
        assert_eq!(f.params, ["x", "n"]);
        assert_eq!(f.outputs, ["m", "s"]);
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn subfunctions() {
        let src = "function y = f(x)\ny = g(x) + 1;\nfunction y = g(x)\ny = x * 2;\n";
        let file = parse_source(src).unwrap();
        assert_eq!(file.functions.len(), 2);
        assert_eq!(file.functions[1].name, "g");
    }

    #[test]
    fn function_with_terminating_end() {
        let src = "function y = f(x)\nif x > 0\ny = 1;\nend\ny = 2;\nend\n";
        let file = parse_source(src).unwrap();
        assert_eq!(file.functions[0].body.len(), 2);
    }

    #[test]
    fn script_before_functions() {
        let src = "x = 1;\ny = f(x);\nfunction y = f(x)\ny = x;\n";
        let file = parse_source(src).unwrap();
        assert_eq!(file.script.len(), 2);
        assert_eq!(file.functions.len(), 1);
    }

    #[test]
    fn node_ids_are_unique() {
        let file = parse_source("x = 1 + 2 * 3;\ny = x(2);\n").unwrap();
        let mut seen = std::collections::HashSet::new();
        for stmt in &file.script {
            if let StmtKind::Assign { lhs, rhs, .. } = &stmt.kind {
                assert!(seen.insert(lhs.id()));
                rhs.walk(&mut |e| {
                    assert!(seen.insert(e.id), "duplicate id {}", e.id);
                });
            }
        }
        assert!(file.node_count as usize >= seen.len());
    }

    #[test]
    fn paper_figure2_ambiguous_code_parses() {
        // Left box of Figure 2.
        let src = "clear\nwhile (x < 3),\n z = i;\n i = z + 1;\nend\n";
        assert!(parse_statements(src).is_ok());
        // Right box of Figure 2.
        let src = "clear\nx = 0;\nfor p = 1:N,\n if (p >= 2) x = y; end\n y = p;\nend\n";
        assert!(parse_statements(src).is_ok());
    }

    #[test]
    fn errors_carry_location() {
        let err = parse_statements("x = )").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
