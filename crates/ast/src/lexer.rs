//! The MATLAB lexer.
//!
//! Two MATLAB-specific subtleties live here:
//!
//! * `'` is the transpose operator when it immediately follows a value
//!   (identifier, number, `)`, `]`, `end`, or another transpose) and a
//!   string delimiter otherwise;
//! * `...` continues a logical line, and `%` starts a comment.

use crate::error::ParseError;
use crate::token::{Span, Token, TokenKind};

/// Streaming lexer over MATLAB source text.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
    /// Whether the previously produced token can end a value (enables
    /// transpose interpretation of `'`).
    prev_ends_value: bool,
}

impl<'src> Lexer<'src> {
    /// A lexer over `src`.
    pub fn new(src: &'src str) -> Lexer<'src> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            prev_ends_value: false,
        }
    }

    /// Lex the entire input into a token vector ending with `Eof`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed numbers, unterminated strings
    /// or unexpected characters.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        c
    }

    /// Skip spaces, tabs, comments and `...` continuations. Returns whether
    /// anything was skipped.
    fn skip_trivia(&mut self) -> bool {
        let start = self.pos;
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                }
                b'%' => {
                    while self.peek() != b'\n' && self.pos < self.src.len() {
                        self.pos += 1;
                    }
                }
                b'.' if self.peek2() == b'.'
                    && *self.src.get(self.pos + 2).unwrap_or(&0) == b'.' =>
                {
                    // Line continuation: skip to and including the newline.
                    while self.peek() != b'\n' && self.pos < self.src.len() {
                        self.pos += 1;
                    }
                    if self.peek() == b'\n' {
                        self.pos += 1;
                        self.line += 1;
                    }
                }
                _ => break,
            }
        }
        self.pos != start
    }

    fn span_from(&self, start: usize, line: u32) -> Span {
        Span {
            start: start as u32,
            end: self.pos as u32,
            line,
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        let space_before = self.skip_trivia();
        let start = self.pos;
        let line = self.line;

        let make = |kind: TokenKind, lexer: &Lexer<'_>, ends_value: bool| {
            (kind, lexer.span_from(start, line), ends_value)
        };

        if self.pos >= self.src.len() {
            let (kind, span, _) = make(TokenKind::Eof, self, false);
            return Ok(Token {
                kind,
                span,
                space_before,
            });
        }

        let c = self.peek();
        let (kind, span, ends_value) = match c {
            b'\n' => {
                self.bump();
                self.line += 1;
                make(TokenKind::Newline, self, false)
            }
            b'0'..=b'9' => self.lex_number(start, line)?,
            b'.' if self.peek2().is_ascii_digit() => self.lex_number(start, line)?,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                let kind = match text {
                    "function" => TokenKind::Function,
                    "for" => TokenKind::For,
                    "while" => TokenKind::While,
                    "if" => TokenKind::If,
                    "elseif" => TokenKind::Elseif,
                    "else" => TokenKind::Else,
                    "end" => TokenKind::End,
                    "return" => TokenKind::Return,
                    "break" => TokenKind::Break,
                    "continue" => TokenKind::Continue,
                    "global" => TokenKind::Global,
                    _ => TokenKind::Ident(text.to_owned()),
                };
                let ends_value = matches!(kind, TokenKind::Ident(_) | TokenKind::End);
                make(kind, self, ends_value)
            }
            b'\'' => {
                // Transpose only when the quote is glued to a value:
                // `A'` transposes, but `['a' 'b']` concatenates strings.
                if self.prev_ends_value && !space_before {
                    self.bump();
                    make(TokenKind::Quote, self, true)
                } else {
                    self.lex_string(start, line)?
                }
            }
            b'.' => {
                self.bump();
                match self.peek() {
                    b'*' => {
                        self.bump();
                        make(TokenKind::DotStar, self, false)
                    }
                    b'/' => {
                        self.bump();
                        make(TokenKind::DotSlash, self, false)
                    }
                    b'\\' => {
                        self.bump();
                        make(TokenKind::DotBackslash, self, false)
                    }
                    b'^' => {
                        self.bump();
                        make(TokenKind::DotCaret, self, false)
                    }
                    b'\'' => {
                        self.bump();
                        make(TokenKind::DotQuote, self, true)
                    }
                    other => {
                        return Err(ParseError::new(
                            format!("unexpected character '.{}'", other as char),
                            self.span_from(start, line),
                        ))
                    }
                }
            }
            b'(' => {
                self.bump();
                make(TokenKind::LParen, self, false)
            }
            b')' => {
                self.bump();
                make(TokenKind::RParen, self, true)
            }
            b'[' => {
                self.bump();
                make(TokenKind::LBracket, self, false)
            }
            b']' => {
                self.bump();
                make(TokenKind::RBracket, self, true)
            }
            b',' => {
                self.bump();
                make(TokenKind::Comma, self, false)
            }
            b';' => {
                self.bump();
                make(TokenKind::Semicolon, self, false)
            }
            b'+' => {
                self.bump();
                make(TokenKind::Plus, self, false)
            }
            b'-' => {
                self.bump();
                make(TokenKind::Minus, self, false)
            }
            b'*' => {
                self.bump();
                make(TokenKind::Star, self, false)
            }
            b'/' => {
                self.bump();
                make(TokenKind::Slash, self, false)
            }
            b'\\' => {
                self.bump();
                make(TokenKind::Backslash, self, false)
            }
            b'^' => {
                self.bump();
                make(TokenKind::Caret, self, false)
            }
            b':' => {
                self.bump();
                make(TokenKind::Colon, self, false)
            }
            b'=' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    make(TokenKind::EqEq, self, false)
                } else {
                    make(TokenKind::Assign, self, false)
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    make(TokenKind::Le, self, false)
                } else {
                    make(TokenKind::Lt, self, false)
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    make(TokenKind::Ge, self, false)
                } else {
                    make(TokenKind::Gt, self, false)
                }
            }
            b'~' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    make(TokenKind::Ne, self, false)
                } else {
                    make(TokenKind::Tilde, self, false)
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == b'&' {
                    self.bump();
                    make(TokenKind::AmpAmp, self, false)
                } else {
                    make(TokenKind::Amp, self, false)
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == b'|' {
                    self.bump();
                    make(TokenKind::PipePipe, self, false)
                } else {
                    make(TokenKind::Pipe, self, false)
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{}'", other as char),
                    self.span_from(start, line),
                ))
            }
        };

        self.prev_ends_value = ends_value;
        Ok(Token {
            kind,
            span,
            space_before,
        })
    }

    fn lex_number(
        &mut self,
        start: usize,
        line: u32,
    ) -> Result<(TokenKind, Span, bool), ParseError> {
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        // Fractional part — but not `.`-operators like `1.*x` or `2.^k`,
        // and not the `..` of an ellipsis.
        if self.peek() == b'.' && !matches!(self.peek2(), b'*' | b'/' | b'\\' | b'^' | b'\'' | b'.')
        {
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), b'+' | b'-') {
                self.pos += 1;
            }
            if self.peek().is_ascii_digit() {
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `2end` never occurs, but
                // `2e` followed by an identifier char would be an error;
                // roll back and let the identifier lexer complain).
                self.pos = save;
            }
        }
        let imaginary = matches!(self.peek(), b'i' | b'j')
            && !matches!(
                self.peek2(),
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_'
            );
        let text_end = self.pos;
        if imaginary {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..text_end]).expect("ascii");
        let value: f64 = text.parse().map_err(|_| {
            ParseError::new(
                format!("malformed number '{text}'"),
                self.span_from(start, line),
            )
        })?;
        Ok((
            TokenKind::Number { value, imaginary },
            self.span_from(start, line),
            true,
        ))
    }

    fn lex_string(
        &mut self,
        start: usize,
        line: u32,
    ) -> Result<(TokenKind, Span, bool), ParseError> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => {
                    return Err(ParseError::new(
                        "unterminated string".to_owned(),
                        self.span_from(start, line),
                    ))
                }
                b'\'' => {
                    self.bump();
                    if self.peek() == b'\'' {
                        self.bump();
                        text.push('\'');
                    } else {
                        break;
                    }
                }
                c => {
                    self.bump();
                    text.push(c as char);
                }
            }
        }
        Ok((TokenKind::Str(text), self.span_from(start, line), true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    fn num(v: f64) -> TokenKind {
        TokenKind::Number {
            value: v,
            imaginary: false,
        }
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 .5 1e3 1.5e-2 2E+1"),
            vec![
                num(1.0),
                num(2.5),
                num(0.5),
                num(1000.0),
                num(0.015),
                num(20.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn imaginary_literals() {
        assert_eq!(
            kinds("3i 2.5j"),
            vec![
                TokenKind::Number {
                    value: 3.0,
                    imaginary: true
                },
                TokenKind::Number {
                    value: 2.5,
                    imaginary: true
                },
                TokenKind::Eof
            ]
        );
        // `3if` would be `3` then ident `if`… (keyword actually)
        assert_eq!(
            kinds("2iter"),
            vec![num(2.0), TokenKind::Ident("iter".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn number_dot_operator_is_not_fraction() {
        assert_eq!(
            kinds("2.*x"),
            vec![
                num(2.0),
                TokenKind::DotStar,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("2.^k"),
            vec![
                num(2.0),
                TokenKind::DotCaret,
                TokenKind::Ident("k".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("for foo end"),
            vec![
                TokenKind::For,
                TokenKind::Ident("foo".into()),
                TokenKind::End,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn transpose_vs_string() {
        // After an identifier: transpose.
        assert_eq!(
            kinds("A'"),
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::Quote,
                TokenKind::Eof
            ]
        );
        // After `(`: string.
        assert_eq!(
            kinds("disp('hi')"),
            vec![
                TokenKind::Ident("disp".into()),
                TokenKind::LParen,
                TokenKind::Str("hi".into()),
                TokenKind::RParen,
                TokenKind::Eof
            ]
        );
        // After `)`: transpose.
        assert_eq!(
            kinds("(x)'"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Quote,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_after_value_with_space() {
        // With a space, `'` starts a string even after a value token.
        assert_eq!(
            kinds("['a' 'b']"),
            vec![
                TokenKind::LBracket,
                TokenKind::Str("a".into()),
                TokenKind::Str("b".into()),
                TokenKind::RBracket,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_and_continuations() {
        assert_eq!(
            kinds("x % comment\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Newline,
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("1 + ...\n 2"),
            vec![num(1.0), TokenKind::Plus, num(2.0), TokenKind::Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("<= >= == ~= && || .* ./ .^ .\\"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::DotStar,
                TokenKind::DotSlash,
                TokenKind::DotCaret,
                TokenKind::DotBackslash,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn space_before_flag() {
        let toks = Lexer::new("[1 -2]").tokenize().unwrap();
        // tokens: [ 1 - 2 ]
        assert!(!toks[1].space_before); // `1` after `[`
        assert!(toks[2].space_before); // `-` after a space
        assert!(!toks[3].space_before); // `2` right after `-`
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(Lexer::new("x = 'oops").tokenize().is_err());
    }

    #[test]
    fn line_numbers() {
        let toks = Lexer::new("a\nb\nc").tokenize().unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[2].span.line, 2);
        assert_eq!(toks[4].span.line, 3);
    }
}
