//! Abstract syntax tree definitions.

use crate::token::Span;
use std::fmt;

/// Unique identifier of an expression (or lvalue) node within one parse.
///
/// Later passes attach analysis results — symbol meanings, type
/// annotations, code-selection choices — in side tables indexed by node id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Unary plus `+x`.
    Plus,
    /// Logical negation `~x`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Plus => "+",
            UnOp::Not => "~",
        })
    }
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*` — matrix multiply.
    Mul,
    /// `/` — matrix right division.
    Div,
    /// `\` — matrix left division (linear solve).
    LeftDiv,
    /// `^` — matrix power.
    Pow,
    /// `.*`
    ElemMul,
    /// `./`
    ElemDiv,
    /// `.\`
    ElemLeftDiv,
    /// `.^`
    ElemPow,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `~=`
    Ne,
    /// `&` — element-wise and.
    And,
    /// `|` — element-wise or.
    Or,
    /// `&&` — short-circuit and.
    ShortAnd,
    /// `||` — short-circuit or.
    ShortOr,
}

impl BinOp {
    /// Is this one of the six relational operators?
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Does this operator work element-wise (as opposed to the matrix
    /// `*`, `/`, `\`, `^`)?
    pub fn is_elementwise(self) -> bool {
        !matches!(self, BinOp::Mul | BinOp::Div | BinOp::LeftDiv | BinOp::Pow)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::LeftDiv => "\\",
            BinOp::Pow => "^",
            BinOp::ElemMul => ".*",
            BinOp::ElemDiv => "./",
            BinOp::ElemLeftDiv => ".\\",
            BinOp::ElemPow => ".^",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "~=",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::ShortAnd => "&&",
            BinOp::ShortOr => "||",
        })
    }
}

/// An expression node.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// Unique node id (side-table key).
    pub id: NodeId,
    /// Source location.
    pub span: Span,
    /// The expression itself.
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Numeric literal; `imaginary` marks `3i`-style literals.
    Number {
        /// The literal value.
        value: f64,
        /// Imaginary-unit suffix present?
        imaginary: bool,
    },
    /// String literal.
    Str(String),
    /// A bare symbol — variable, builtin constant (`pi`, `i`, …) or
    /// zero-argument function call. Which one is decided by the
    /// disambiguation pass.
    Ident(String),
    /// `name(args)` — array indexing *or* a call; disambiguated later.
    /// Arguments may contain [`ExprKind::Colon`] and [`ExprKind::End`].
    Apply {
        /// The symbol being indexed or called.
        callee: String,
        /// Subscripts or actual parameters.
        args: Vec<Expr>,
    },
    /// `start : end` or `start : step : end`.
    Range {
        /// First value.
        start: Box<Expr>,
        /// Optional step (defaults to 1).
        step: Option<Box<Expr>>,
        /// Inclusive upper bound.
        stop: Box<Expr>,
    },
    /// A bare `:` subscript (entire dimension).
    Colon,
    /// `end` inside a subscript — the extent of the indexed dimension.
    End,
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Matrix literal `[rows]`: a vector of rows, each a vector of
    /// horizontally concatenated elements.
    Matrix(Vec<Vec<Expr>>),
    /// Conjugate transpose `x'` (or the non-conjugating `x.'` when
    /// `conjugate` is false).
    Transpose {
        /// The transposed operand.
        operand: Box<Expr>,
        /// `'` (true) vs `.'` (false).
        conjugate: bool,
    },
}

impl Expr {
    /// Walk this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Apply { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Range { start, step, stop } => {
                start.walk(f);
                if let Some(s) = step {
                    s.walk(f);
                }
                stop.walk(f);
            }
            ExprKind::Unary { operand, .. } => operand.walk(f),
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Matrix(rows) => {
                for row in rows {
                    for e in row {
                        e.walk(f);
                    }
                }
            }
            ExprKind::Transpose { operand, .. } => operand.walk(f),
            ExprKind::Number { .. }
            | ExprKind::Str(_)
            | ExprKind::Ident(_)
            | ExprKind::Colon
            | ExprKind::End => {}
        }
    }
}

/// The target of an assignment.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Plain variable assignment `x = …`.
    Var {
        /// Variable name.
        name: String,
        /// Node id for annotations.
        id: NodeId,
        /// Source location.
        span: Span,
    },
    /// Indexed assignment `A(i, j) = …` (may grow the array).
    Index {
        /// Array name.
        name: String,
        /// Subscripts (may contain `:` and `end`).
        args: Vec<Expr>,
        /// Node id for annotations.
        id: NodeId,
        /// Source location.
        span: Span,
    },
}

impl LValue {
    /// The assigned variable's name.
    pub fn name(&self) -> &str {
        match self {
            LValue::Var { name, .. } | LValue::Index { name, .. } => name,
        }
    }

    /// The lvalue's node id.
    pub fn id(&self) -> NodeId {
        match self {
            LValue::Var { id, .. } | LValue::Index { id, .. } => *id,
        }
    }

    /// The lvalue's span.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var { span, .. } | LValue::Index { span, .. } => *span,
        }
    }
}

/// A statement node.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// Source location.
    pub span: Span,
    /// The statement itself.
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// Expression statement (result displayed unless suppressed by `;`).
    Expr {
        /// The evaluated expression.
        expr: Expr,
        /// Trailing `;` present?
        suppressed: bool,
    },
    /// Single assignment `lhs = rhs`.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Assigned value.
        rhs: Expr,
        /// Trailing `;` present?
        suppressed: bool,
    },
    /// Multi-assignment `[a, b] = f(args)`.
    MultiAssign {
        /// Assignment targets.
        lhs: Vec<LValue>,
        /// Node id of the call (for annotations).
        id: NodeId,
        /// Called function.
        callee: String,
        /// Actual parameters.
        args: Vec<Expr>,
        /// Trailing `;` present?
        suppressed: bool,
    },
    /// `if` / `elseif` / `else` chain; each branch is a condition with its
    /// body, plus an optional `else` body.
    If {
        /// `(condition, body)` per `if`/`elseif` arm.
        branches: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body, if present.
        else_body: Option<Vec<Stmt>>,
    },
    /// `while cond … end`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for var = iter … end`.
    For {
        /// Induction variable.
        var: String,
        /// Node id of the induction variable (for annotations).
        var_id: NodeId,
        /// Iteration space (typically a range, but any matrix iterates by
        /// columns in MATLAB).
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `return`.
    Return,
    /// `global x y`.
    Global(Vec<String>),
    /// `clear` / `clear x y` — command syntax.
    Clear(Vec<String>),
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Output variable names.
    pub outputs: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the header.
    pub span: Span,
}

/// A parsed source file: an optional leading script plus function
/// definitions (a function file's subfunctions follow its main function).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SourceFile {
    /// Statements before the first `function` keyword (script part).
    pub script: Vec<Stmt>,
    /// Function definitions in source order.
    pub functions: Vec<Function>,
    /// One past the largest [`NodeId`] allocated while parsing; side tables
    /// can be sized `node_count` up front.
    pub node_count: u32,
}

impl SourceFile {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}
