//! The MaJIC MATLAB frontend: lexer, parser and abstract syntax tree.
//!
//! The first pass of the MaJIC compiler (paper Figure 1, pass 1) is a
//! scanner/parser that transforms MATLAB source into an abstract syntax
//! tree. This crate implements that pass for the MATLAB subset exercised by
//! the paper's benchmarks: functions with multiple return values, `for` /
//! `while` / `if` control flow, matrix literals, colon ranges, `end`
//! subscripts, complex literals, element-wise and matrix operators, and
//! command-syntax `clear` / `global`.
//!
//! Every expression node carries a unique [`NodeId`]; later passes
//! (disambiguation, type inference, code selection) attach their results in
//! side tables indexed by it.
//!
//! # Examples
//!
//! ```
//! use majic_ast::parse_source;
//!
//! let src = "function p = poly(x)\np = x.^5 + 3*x + 2;\n";
//! let file = parse_source(src).unwrap();
//! assert_eq!(file.functions[0].name, "poly");
//! assert_eq!(file.functions[0].params, ["x"]);
//! ```

mod ast;
mod display;
mod error;
mod lexer;
mod parser;
mod token;

pub use ast::{BinOp, Expr, ExprKind, Function, LValue, NodeId, SourceFile, Stmt, StmtKind, UnOp};
pub use error::ParseError;
pub use lexer::Lexer;
pub use parser::{parse_expression, parse_source, parse_statements, Parser};
pub use token::{Span, Token, TokenKind};
