//! Tokens and source spans.

use std::fmt;

/// A half-open byte range into the source, with the 1-based line of its
/// start.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Span {
    /// A span covering both operands.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// Lexical token kinds of the MATLAB subset.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Numeric literal; `imaginary` is set for `3i` / `2.5j` forms.
    Number {
        value: f64,
        imaginary: bool,
    },
    /// String literal (single-quoted, `''` escapes a quote).
    Str(String),
    /// Identifier (variable, builtin or function name).
    Ident(String),

    // Keywords.
    Function,
    For,
    While,
    If,
    Elseif,
    Else,
    End,
    Return,
    Break,
    Continue,
    Global,

    // Punctuation and operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Newline,
    Assign,
    Colon,
    Plus,
    Minus,
    Star,
    Slash,
    Backslash,
    Caret,
    DotStar,
    DotSlash,
    DotBackslash,
    DotCaret,
    Quote,
    DotQuote,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Amp,
    Pipe,
    AmpAmp,
    PipePipe,
    Tilde,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Could this token begin an expression? Used by the matrix-literal
    /// whitespace-separation heuristic.
    pub fn starts_expression(&self) -> bool {
        matches!(
            self,
            TokenKind::Number { .. }
                | TokenKind::Str(_)
                | TokenKind::Ident(_)
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::Plus
                | TokenKind::Minus
                | TokenKind::Tilde
                | TokenKind::End
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Number { value, imaginary } => {
                write!(f, "{value}{}", if *imaginary { "i" } else { "" })
            }
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Ident(s) => f.write_str(s),
            TokenKind::Function => f.write_str("function"),
            TokenKind::For => f.write_str("for"),
            TokenKind::While => f.write_str("while"),
            TokenKind::If => f.write_str("if"),
            TokenKind::Elseif => f.write_str("elseif"),
            TokenKind::Else => f.write_str("else"),
            TokenKind::End => f.write_str("end"),
            TokenKind::Return => f.write_str("return"),
            TokenKind::Break => f.write_str("break"),
            TokenKind::Continue => f.write_str("continue"),
            TokenKind::Global => f.write_str("global"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Newline => f.write_str("\\n"),
            TokenKind::Assign => f.write_str("="),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Backslash => f.write_str("\\"),
            TokenKind::Caret => f.write_str("^"),
            TokenKind::DotStar => f.write_str(".*"),
            TokenKind::DotSlash => f.write_str("./"),
            TokenKind::DotBackslash => f.write_str(".\\"),
            TokenKind::DotCaret => f.write_str(".^"),
            TokenKind::Quote => f.write_str("'"),
            TokenKind::DotQuote => f.write_str(".'"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::EqEq => f.write_str("=="),
            TokenKind::Ne => f.write_str("~="),
            TokenKind::Amp => f.write_str("&"),
            TokenKind::Pipe => f.write_str("|"),
            TokenKind::AmpAmp => f.write_str("&&"),
            TokenKind::PipePipe => f.write_str("||"),
            TokenKind::Tilde => f.write_str("~"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its span and layout context.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
    /// Was there whitespace (or a comment) immediately before this token?
    /// Needed by the matrix-literal element-separation heuristic
    /// (`[1 -2]` is two elements, `[1 - 2]` is one).
    pub space_before: bool,
}
