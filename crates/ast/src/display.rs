//! Pretty-printing of AST nodes back to (parenthesized) MATLAB syntax.
//!
//! The printer fully parenthesizes nested operators, which makes it useful
//! for precedence tests and compiler debugging output rather than for
//! round-tripping source verbatim.

use crate::ast::*;
use std::fmt;

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Number { value, imaginary } => {
                write!(f, "{value}{}", if *imaginary { "i" } else { "" })
            }
            ExprKind::Str(s) => write!(f, "'{s}'"),
            ExprKind::Ident(name) => f.write_str(name),
            ExprKind::Apply { callee, args } => {
                write!(f, "{callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            ExprKind::Range { start, step, stop } => match step {
                Some(step) => write!(f, "({start}:{step}:{stop})"),
                None => write!(f, "({start}:{stop})"),
            },
            ExprKind::Colon => f.write_str(":"),
            ExprKind::End => f.write_str("end"),
            ExprKind::Unary { op, operand } => write!(f, "({op}{operand})"),
            ExprKind::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            ExprKind::Matrix(rows) => {
                f.write_str("[")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str("; ")?;
                    }
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                }
                f.write_str("]")
            }
            ExprKind::Transpose { operand, conjugate } => {
                write!(f, "{operand}{}", if *conjugate { "'" } else { ".'" })
            }
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Var { name, .. } => f.write_str(name),
            LValue::Index { name, args, .. } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

fn write_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        s.fmt_indented(f, indent)?;
    }
    Ok(())
}

impl Stmt {
    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match &self.kind {
            StmtKind::Expr { expr, suppressed } => {
                writeln!(f, "{pad}{expr}{}", if *suppressed { ";" } else { "" })
            }
            StmtKind::Assign {
                lhs,
                rhs,
                suppressed,
            } => writeln!(
                f,
                "{pad}{lhs} = {rhs}{}",
                if *suppressed { ";" } else { "" }
            ),
            StmtKind::MultiAssign {
                lhs,
                callee,
                args,
                suppressed,
                ..
            } => {
                write!(f, "{pad}[")?;
                for (i, lv) in lhs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{lv}")?;
                }
                write!(f, "] = {callee}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, "){}", if *suppressed { ";" } else { "" })
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (i, (cond, body)) in branches.iter().enumerate() {
                    writeln!(f, "{pad}{} {cond}", if i == 0 { "if" } else { "elseif" })?;
                    write_block(f, body, indent + 1)?;
                }
                if let Some(body) = else_body {
                    writeln!(f, "{pad}else")?;
                    write_block(f, body, indent + 1)?;
                }
                writeln!(f, "{pad}end")
            }
            StmtKind::While { cond, body } => {
                writeln!(f, "{pad}while {cond}")?;
                write_block(f, body, indent + 1)?;
                writeln!(f, "{pad}end")
            }
            StmtKind::For {
                var, iter, body, ..
            } => {
                writeln!(f, "{pad}for {var} = {iter}")?;
                write_block(f, body, indent + 1)?;
                writeln!(f, "{pad}end")
            }
            StmtKind::Break => writeln!(f, "{pad}break"),
            StmtKind::Continue => writeln!(f, "{pad}continue"),
            StmtKind::Return => writeln!(f, "{pad}return"),
            StmtKind::Global(names) => writeln!(f, "{pad}global {}", names.join(" ")),
            StmtKind::Clear(names) => {
                if names.is_empty() {
                    writeln!(f, "{pad}clear")
                } else {
                    writeln!(f, "{pad}clear {}", names.join(" "))
                }
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("function ")?;
        match self.outputs.len() {
            0 => {}
            1 => write!(f, "{} = ", self.outputs[0])?,
            _ => write!(f, "[{}] = ", self.outputs.join(", "))?,
        }
        writeln!(f, "{}({})", self.name, self.params.join(", "))?;
        write_block(f, &self.body, 1)
    }
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_block(f, &self.script, 0)?;
        for func in &self.functions {
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}
