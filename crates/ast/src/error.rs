//! Frontend errors.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// An error produced by the lexer or parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    span: Span,
}

impl ParseError {
    /// An error with a message and location.
    pub fn new(message: String, span: Span) -> ParseError {
        ParseError { message, span }
    }

    /// The human-readable message (without location).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where the error occurred.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl Error for ParseError {}
