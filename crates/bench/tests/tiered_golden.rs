//! Golden tiered suite: every benchmark must produce **bitwise
//! identical** results whether it runs on tier-0 JIT code forever or is
//! promoted to tier-1 by the hotness profile. This is the paper's
//! safety invariant (§2.2.1: a wrong guess "never affects program
//! correctness") applied to the recompilation tier: promotion may only
//! change how fast an answer arrives, never the answer.

use majic::{ExecMode, Majic, Value};
use majic_bench::all;

const SCALE: f64 = 0.02;

/// Exact bit-level digest of a value: every element, no rounding.
fn digest(v: &Value) -> Vec<u64> {
    match v {
        Value::Real(m) => m.iter().map(|x| x.to_bits()).collect(),
        Value::Bool(m) => m.iter().map(|&b| u64::from(b)).collect(),
        Value::Complex(m) => m
            .iter()
            .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
            .collect(),
        Value::Str(s) => s.bytes().map(u64::from).collect(),
    }
}

#[test]
fn all_benchmarks_bitwise_identical_across_tiers() {
    // Deep recursion (ackermann) needs a roomy stack in debug builds.
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(|| {
            for b in all() {
                let args = (b.args)(SCALE);

                // Arm A: perpetual tier-0 (promotion off), called twice.
                // Some benchmarks carry state across calls (mei and fern
                // advance the global `rand` stream), so each arm B call
                // is compared against the arm A call at the same point
                // in the sequence — never across call counts.
                let mut t0 = Majic::with_mode(ExecMode::Jit);
                t0.options.tier.enabled = false;
                t0.load_source(b.source).unwrap();
                let first = digest(
                    &t0.call(b.entry, &args, 1)
                        .unwrap_or_else(|e| panic!("{}: {e}", b.name))[0],
                );
                let second = digest(&t0.call(b.entry, &args, 1).unwrap()[0]);

                // Arm B: promote everything the profile touches, then
                // call again so tier-1 code actually dispatches.
                let mut tiered = Majic::with_mode(ExecMode::Jit);
                tiered.options.tier.threshold = 1;
                tiered.load_source(b.source).unwrap();
                let cold = digest(&tiered.call(b.entry, &args, 1).unwrap()[0]);
                assert_eq!(first, cold, "{}: tier-0 run diverged", b.name);
                tiered.background().wait();
                let [_, t1_versions] = tiered.repository().tier_versions();
                assert!(
                    t1_versions > 0,
                    "{}: nothing promoted at threshold 1",
                    b.name
                );
                let hot = digest(&tiered.call(b.entry, &args, 1).unwrap()[0]);
                assert_eq!(second, hot, "{}: tier-1 result differs from tier-0", b.name);
                assert!(
                    tiered.repository().stats().tier1_hits > 0,
                    "{}: promoted version never dispatched",
                    b.name
                );
            }
        })
        .unwrap()
        .join()
        .unwrap();
}
