//! Golden parallel-kernel suite: every benchmark must produce **bitwise
//! identical** results for every kernel thread count. Determinism is
//! the hard invariant of the data-parallel layer — each output element
//! is computed by the exact same expression (and, for the blocked
//! product, the same accumulation order) as the sequential path, so
//! `MAJIC_THREADS` may only change how fast an answer arrives, never
//! the answer. The gate threshold is lowered here so benchmark-sized
//! matrices actually take the parallel path instead of ducking under
//! the size gate.

use majic::{ExecMode, Majic, Value};
use majic_bench::all;
use majic_runtime::par;
use std::sync::Mutex;

const SCALE: f64 = 0.02;

/// The kernel pool is process-global; tests that reconfigure it must
/// not interleave.
static CONFIG: Mutex<()> = Mutex::new(());

/// Exact bit-level digest of a value: every element, no rounding.
fn digest(v: &Value) -> Vec<u64> {
    match v {
        Value::Real(m) => m.iter().map(|x| x.to_bits()).collect(),
        Value::Bool(m) => m.iter().map(|&b| u64::from(b)).collect(),
        Value::Complex(m) => m
            .iter()
            .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
            .collect(),
        Value::Str(s) => s.bytes().map(u64::from).collect(),
    }
}

fn run_all(threads: usize) -> Vec<(&'static str, Vec<u64>)> {
    par::set_threads(threads);
    all()
        .iter()
        .map(|b| {
            let args = (b.args)(SCALE);
            let mut m = Majic::with_mode(ExecMode::Jit);
            m.load_source(b.source).unwrap();
            let out = m
                .call(b.entry, &args, 1)
                .unwrap_or_else(|e| panic!("{} @ {threads} threads: {e}", b.name));
            (b.name, digest(&out[0]))
        })
        .collect()
}

#[test]
fn engine_options_threads_configures_the_pool() {
    let _guard = CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.options.threads = Some(2);
    m.load_source("function y = twice(x)\ny = 2 * x;\n")
        .unwrap();
    let out = m.call("twice", &[21.0f64.into()], 1).unwrap();
    assert_eq!(out[0].to_scalar().unwrap(), 42.0);
    assert_eq!(
        par::thread_count(),
        2,
        "EngineOptions::threads must reach the kernel pool on call"
    );
    par::set_threads(0);
}

#[test]
fn all_benchmarks_bitwise_identical_across_thread_counts() {
    let _guard = CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    // Deep recursion (ackermann) needs a roomy stack in debug builds.
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(|| {
            // Force benchmark-sized ops through the parallel path.
            par::set_threshold(16);
            let baseline = run_all(0);
            for threads in [1usize, 4] {
                let dispatched_before = majic_trace::counter("kernel.par.dispatch").get();
                let got = run_all(threads);
                for ((name, want), (_, have)) in baseline.iter().zip(&got) {
                    assert_eq!(
                        want, have,
                        "{name}: results diverge at MAJIC_THREADS={threads}"
                    );
                }
                if threads > 1 {
                    // The agreement must be between genuinely parallel
                    // and sequential executions, not sequential twice.
                    assert!(
                        majic_trace::counter("kernel.par.dispatch").get() > dispatched_before,
                        "no parallel kernel ever dispatched at {threads} threads"
                    );
                }
            }
            par::set_threads(0);
            par::set_threshold(par::DEFAULT_PAR_THRESHOLD);
        })
        .unwrap()
        .join()
        .unwrap();
}
