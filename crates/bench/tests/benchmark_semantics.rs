//! Every Table-1 benchmark must produce identical results under the
//! interpreter and every compiled mode (at a small problem scale).
//! This is the repository's safety guarantee applied to the full suite.

use majic::{ExecMode, Majic, Value};
use majic_bench::{all, line_count};

const SCALE: f64 = 0.05;

fn run(mode: ExecMode, src: &str, entry: &str, args: &[Value]) -> f64 {
    let mut m = Majic::with_mode(mode);
    m.load_source(src).unwrap_or_else(|e| panic!("{entry}: {e}"));
    if mode == ExecMode::Spec {
        m.speculate_all();
    }
    let out = m
        .call(entry, args, 1)
        .unwrap_or_else(|e| panic!("{entry} [{mode:?}]: {e}"));
    // Reduce matrix results to a digest for comparison.
    match &out[0] {
        Value::Real(mat) => mat.iter().sum::<f64>() + mat.numel() as f64,
        other => other.to_scalar().unwrap_or(f64::NAN),
    }
}

#[test]
fn all_benchmarks_agree_across_modes() {
    // Deep recursion (ackermann) needs a roomy stack in debug builds.
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(all_benchmarks_agree_body)
        .expect("spawn")
        .join()
        .expect("no panics");
}

fn all_benchmarks_agree_body() {
    for b in all() {
        let args = (b.args)(SCALE);
        let reference = run(ExecMode::Interpret, b.source, b.entry, &args);
        for mode in [ExecMode::Mcc, ExecMode::Jit, ExecMode::Spec, ExecMode::Falcon] {
            let got = run(mode, b.source, b.entry, &args);
            let close = reference == got
                || (reference - got).abs() <= 1e-6 * reference.abs().max(1.0);
            assert!(
                close,
                "{} [{mode:?}]: {got} vs interpreter {reference}",
                b.name
            );
        }
    }
}

#[test]
fn suite_matches_table_one_inventory() {
    let names: Vec<&str> = all().iter().map(|b| b.name).collect();
    for expected in [
        "adapt",
        "cgopt",
        "crnich",
        "dirich",
        "finedif",
        "galrkn",
        "icn",
        "mei",
        "orbec",
        "orbrk",
        "qmr",
        "sor",
        "ackermann",
        "fractal",
        "mandel",
        "fibonacci",
    ] {
        assert!(names.contains(&expected), "missing benchmark {expected}");
    }
    assert_eq!(names.len(), 16);
}

#[test]
fn line_counts_match_paper_band() {
    // Table 1 reports 10–119 lines; ours must stay in the same band
    // (10–250 per §3.1: "between 50 and 250 lines" for the suite
    // overall, with the small recursive codes at 10–15).
    for b in all() {
        let lines = line_count(&b);
        assert!(
            (5..=250).contains(&lines),
            "{}: {lines} lines out of band",
            b.name
        );
    }
}

#[test]
fn known_values_spot_checks() {
    // fibonacci(10) = 55 via every mode's default path.
    let fib = majic_bench::by_name("fibonacci").unwrap();
    for mode in [ExecMode::Interpret, ExecMode::Jit, ExecMode::Spec] {
        let mut m = Majic::with_mode(mode);
        m.load_source(fib.source).unwrap();
        if mode == ExecMode::Spec {
            m.speculate_all();
        }
        let out = m.call("fibonacci", &[Value::scalar(10.0)], 1).unwrap();
        assert_eq!(out[0].to_scalar().unwrap(), 55.0);
    }
    // ackermann(2, 3) = 9.
    let ack = majic_bench::by_name("ackermann").unwrap();
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source(ack.source).unwrap();
    let out = m
        .call("ackermann", &[Value::scalar(2.0), Value::scalar(3.0)], 1)
        .unwrap();
    assert_eq!(out[0].to_scalar().unwrap(), 9.0);
    // adapt integrates sin on [0, π] → q ≈ 2.
    let adapt = majic_bench::by_name("adapt").unwrap();
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source(adapt.source).unwrap();
    let out = m
        .call("adapt", &[Value::scalar(4000.0), Value::scalar(1e-10)], 1)
        .unwrap();
    assert!((out[0].to_scalar().unwrap() - 2.0).abs() < 1e-6);
}
