//! Golden-output tests: every Table-1 benchmark must produce results
//! **bitwise identical** to the interpreter baseline under every
//! compiled mode (at a small problem scale), including speculative mode
//! with background workers. This is the repository's safety guarantee
//! ("a wrong guess … never affects program correctness") applied to the
//! full suite, with no floating-point tolerance to hide behind.

use majic::{ExecMode, Majic, Value};
use majic_bench::{all, line_count};

const SCALE: f64 = 0.05;

/// Exact bit-level digest of a value: every element, no rounding.
fn digest(v: &Value) -> Vec<u64> {
    match v {
        Value::Real(m) => m.iter().map(|x| x.to_bits()).collect(),
        Value::Bool(m) => m.iter().map(|&b| u64::from(b)).collect(),
        Value::Complex(m) => m
            .iter()
            .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
            .collect(),
        Value::Str(s) => s.bytes().map(u64::from).collect(),
    }
}

/// Run one benchmark; `spec_workers = Some(n)` uses background
/// speculation with `n` workers (drained before the call so the
/// optimized versions actually get exercised), `None` with
/// `ExecMode::Spec` uses the synchronous path.
fn run(
    mode: ExecMode,
    spec_workers: Option<usize>,
    b: &majic_bench::Benchmark,
    args: &[Value],
) -> Vec<u64> {
    let mut m = Majic::with_mode(mode);
    m.load_source(b.source)
        .unwrap_or_else(|e| panic!("{}: {e}", b.entry));
    if mode == ExecMode::Spec {
        match spec_workers {
            Some(n) => {
                m.speculate_background(n);
                m.background().wait();
            }
            None => {
                m.speculate_all();
            }
        }
    }
    let out = m
        .call(b.entry, args, 1)
        .unwrap_or_else(|e| panic!("{} [{mode:?}]: {e}", b.entry));
    digest(&out[0])
}

#[test]
fn all_benchmarks_bitwise_identical_across_modes() {
    // Deep recursion (ackermann) needs a roomy stack in debug builds.
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(all_benchmarks_bitwise_body)
        .expect("spawn")
        .join()
        .expect("no panics");
}

fn all_benchmarks_bitwise_body() {
    for b in all() {
        let args = (b.args)(SCALE);
        let reference = run(ExecMode::Interpret, None, &b, &args);
        for mode in [
            ExecMode::Mcc,
            ExecMode::Jit,
            ExecMode::Spec,
            ExecMode::Falcon,
        ] {
            let got = run(mode, None, &b, &args);
            assert_eq!(
                got, reference,
                "{} [{mode:?}]: output not bitwise identical to interpreter",
                b.name
            );
        }
        // Speculation off the critical path must not change a single bit
        // either — the acceptance criterion for background compilation.
        for workers in [1, 4] {
            let got = run(ExecMode::Spec, Some(workers), &b, &args);
            assert_eq!(
                got, reference,
                "{} [spec, {workers} background workers]: output not bitwise identical",
                b.name
            );
        }
    }
}

#[test]
fn suite_matches_table_one_inventory() {
    let names: Vec<&str> = all().iter().map(|b| b.name).collect();
    for expected in [
        "adapt",
        "cgopt",
        "crnich",
        "dirich",
        "finedif",
        "galrkn",
        "icn",
        "mei",
        "orbec",
        "orbrk",
        "qmr",
        "sor",
        "ackermann",
        "fractal",
        "mandel",
        "fibonacci",
    ] {
        assert!(names.contains(&expected), "missing benchmark {expected}");
    }
    assert_eq!(names.len(), 16);
}

#[test]
fn line_counts_match_paper_band() {
    // Table 1 reports 10–119 lines; ours must stay in the same band
    // (10–250 per §3.1: "between 50 and 250 lines" for the suite
    // overall, with the small recursive codes at 10–15).
    for b in all() {
        let lines = line_count(&b);
        assert!(
            (5..=250).contains(&lines),
            "{}: {lines} lines out of band",
            b.name
        );
    }
}

#[test]
fn known_values_spot_checks() {
    // fibonacci(10) = 55 via every mode's default path.
    let fib = majic_bench::by_name("fibonacci").unwrap();
    for mode in [ExecMode::Interpret, ExecMode::Jit, ExecMode::Spec] {
        let mut m = Majic::with_mode(mode);
        m.load_source(fib.source).unwrap();
        if mode == ExecMode::Spec {
            m.speculate_all();
        }
        let out = m.call("fibonacci", &[Value::scalar(10.0)], 1).unwrap();
        assert_eq!(out[0].to_scalar().unwrap(), 55.0);
    }
    // ackermann(2, 3) = 9.
    let ack = majic_bench::by_name("ackermann").unwrap();
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source(ack.source).unwrap();
    let out = m
        .call("ackermann", &[Value::scalar(2.0), Value::scalar(3.0)], 1)
        .unwrap();
    assert_eq!(out[0].to_scalar().unwrap(), 9.0);
    // adapt integrates sin on [0, π] → q ≈ 2.
    let adapt = majic_bench::by_name("adapt").unwrap();
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source(adapt.source).unwrap();
    let out = m
        .call("adapt", &[Value::scalar(4000.0), Value::scalar(1e-10)], 1)
        .unwrap();
    assert!((out[0].to_scalar().unwrap() - 2.0).abs() < 1e-6);
}
