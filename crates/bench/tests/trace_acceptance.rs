//! Acceptance: the trace reconstructs Figure 6.
//!
//! A single JIT call of each of the 16 benchmarks must produce trace
//! events whose per-phase durations (disambiguation → inference →
//! codegen → execution) add up to the engine's `PhaseTimes` within 5%,
//! and repository lookups must carry their Manhattan-distance
//! annotations. Spans and `PhaseTimes` are fed from the *same*
//! measurement, so the tolerance only absorbs rounding.

use majic::{ExecMode, Majic};
use majic_bench::all;
use majic_trace::{reset, set_enabled, snapshot, EventKind};
use std::sync::Mutex;
use std::time::Duration;

/// The collector is process-global; serialize tests in this binary.
static LOCK: Mutex<()> = Mutex::new(());

const SCALE: f64 = 0.05;

fn within_5_percent(traced: Duration, engine: Duration, what: &str) {
    let t = traced.as_secs_f64();
    let e = engine.as_secs_f64();
    if e <= 1e-9 {
        assert!(t <= 1e-6, "{what}: traced {t}s against empty phase");
        return;
    }
    let rel = (t - e).abs() / e;
    assert!(
        rel <= 0.05,
        "{what}: traced {t:.6}s vs engine {e:.6}s ({:.2}% off)",
        rel * 100.0
    );
}

#[test]
fn figure6_phases_reconstruct_from_trace() {
    let _g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reset();
    set_enabled(true);

    let mut engine_times = majic::PhaseTimes::default();
    let benchmarks = all();
    assert_eq!(benchmarks.len(), 16, "the paper's 16-benchmark suite");
    for b in &benchmarks {
        let mut m = Majic::with_mode(ExecMode::Jit);
        // Hot promotion would run background tier-1 compiles whose
        // spans land in the global trace but whose PhaseTimes are
        // worker-local; this test reconstructs the *foreground*
        // pipeline, so keep it single-tier.
        m.options.tier.enabled = false;
        m.load_source(b.source).unwrap();
        let args = (b.args)(SCALE);
        m.call(b.entry, &args, 1)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        engine_times.disambiguation += m.times.disambiguation;
        engine_times.inference += m.times.inference;
        engine_times.codegen += m.times.codegen;
        engine_times.execution += m.times.execution;
    }

    set_enabled(false);
    let snap = snapshot();

    let sum_phase = |name: &str| -> Duration {
        snap.events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.name == name)
            .map(|e| Duration::from_nanos(e.dur_ns))
            .sum()
    };
    within_5_percent(
        sum_phase("disambiguation"),
        engine_times.disambiguation,
        "disambiguation",
    );
    within_5_percent(sum_phase("inference"), engine_times.inference, "inference");
    within_5_percent(sum_phase("codegen"), engine_times.codegen, "codegen");
    within_5_percent(sum_phase("execution"), engine_times.execution, "execution");

    // Every benchmark compiled at least its entry function, annotated
    // with the function name, nested under the top-level call span.
    let compiles: Vec<_> = snap.events.iter().filter(|e| e.name == "compile").collect();
    assert!(compiles.len() >= 16, "got {} compile spans", compiles.len());
    for b in &benchmarks {
        assert!(
            compiles
                .iter()
                .any(|e| e.args.iter().any(|(k, v)| *k == "fn" && v == b.entry)),
            "no compile span for {}",
            b.entry
        );
    }
    assert!(snap
        .events
        .iter()
        .any(|e| e.path.starts_with("call;") && e.name == "inference"));

    // Repository lookups carry Manhattan-distance annotations.
    let lookups: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "repo.lookup")
        .collect();
    assert!(!lookups.is_empty(), "no repo.lookup events");
    for l in &lookups {
        assert_eq!(l.kind, EventKind::Instant);
        assert!(l.args.iter().any(|(k, _)| *k == "hit"));
    }
    assert!(
        lookups
            .iter()
            .any(|l| l.args.iter().any(|(k, _)| *k == "distance")),
        "no lookup recorded a best-match distance"
    );
    let hits = snap.counters.iter().find(|c| c.name == "repo.hits");
    let misses = snap.counters.iter().find(|c| c.name == "repo.misses");
    assert!(
        misses.is_some_and(|c| c.value >= 16),
        "every first call misses"
    );
    assert!(hits.is_some() || misses.is_some());
    assert!(snap
        .histograms
        .iter()
        .any(|h| h.name == "repo.lookup.distance" && h.count > 0));

    reset();
}

#[test]
fn chrome_export_of_real_run_is_parseable() {
    let _g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    reset();
    set_enabled(true);

    let b = majic_bench::by_name("fib").unwrap_or_else(|| all().remove(0));
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source(b.source).unwrap();
    m.call(b.entry, &(b.args)(0.02), 1).unwrap();
    set_enabled(false);

    let json = majic_trace::export::chrome_trace_json(&snapshot());
    let doc = majic_testkit::json::Json::parse(&json).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(majic_testkit::json::Json::as_arr)
        .expect("traceEvents");
    assert!(events.len() > 4);
    let report = m.trace_report();
    assert!(report.contains("compile"), "report:\n{report}");
    reset();
}
