//! Golden warm-start suite: every benchmark must produce **bitwise
//! identical** results whether its first call is compiled cold or served
//! from a persistent repository cache written by a previous session.
//! This extends the repository safety guarantee ("a wrong guess … never
//! affects program correctness") across process lifetimes, with no
//! floating-point tolerance to hide behind.

use majic::{ExecMode, Majic, Value};
use majic_bench::all;
use std::path::Path;

const SCALE: f64 = 0.02;

/// Exact bit-level digest of a value: every element, no rounding.
fn digest(v: &Value) -> Vec<u64> {
    match v {
        Value::Real(m) => m.iter().map(|x| x.to_bits()).collect(),
        Value::Bool(m) => m.iter().map(|&b| u64::from(b)).collect(),
        Value::Complex(m) => m
            .iter()
            .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
            .collect(),
        Value::Str(s) => s.bytes().map(u64::from).collect(),
    }
}

fn run(b: &majic_bench::Benchmark, args: &[Value], cache: Option<&Path>) -> (Vec<u64>, usize) {
    let mut m = Majic::with_mode(ExecMode::Jit);
    if let Some(path) = cache {
        m.attach_cache(path);
    }
    m.load_source(b.source)
        .unwrap_or_else(|e| panic!("{}: {e}", b.entry));
    let out = m
        .call(b.entry, args, 1)
        .unwrap_or_else(|e| panic!("{}: {e}", b.entry));
    let installed = m.cache_report().installed;
    if cache.is_some() {
        m.save_cache().unwrap();
    }
    (digest(&out[0]), installed)
}

#[test]
fn all_benchmarks_bitwise_identical_cold_vs_warm() {
    // Deep recursion (ackermann) needs a roomy stack in debug builds.
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(|| {
            let dir =
                std::env::temp_dir().join(format!("majic-golden-warm-{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            for b in all() {
                let args = (b.args)(SCALE);
                let cache = dir.join(format!("{}.majiccache", b.name));

                let (cold, _) = run(&b, &args, None);
                // Session 1 populates the cache; session 2 is warm.
                let (populate, _) = run(&b, &args, Some(&cache));
                assert_eq!(cold, populate, "{}: populate run diverged", b.name);
                let (warm, installed) = run(&b, &args, Some(&cache));
                assert!(installed > 0, "{}: warm run installed nothing", b.name);
                assert_eq!(cold, warm, "{}: warm result differs from cold", b.name);
            }
            let _ = std::fs::remove_dir_all(&dir);
        })
        .unwrap()
        .join()
        .unwrap();
}
