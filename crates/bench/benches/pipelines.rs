//! Criterion micro-benchmarks of the compiler pipelines themselves:
//! interpreter vs JIT vs optimizing backend on a scalar kernel, JIT
//! inference speed, repository lookup, and register allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use majic::{ExecMode, Majic, Value};
use majic_analysis::disambiguate;
use majic_ast::parse_source;
use majic_infer::{infer_jit, InferOptions, NoOracle, Signature};
use majic_types::Type;
use std::collections::HashSet;

const SUMSQ: &str = "function s = sumsq(n)\ns = 0;\nfor k = 1:n\n s = s + k * k;\nend\n";

fn bench_exec_tiers(c: &mut Criterion) {
    let n = Value::scalar(2000.0);
    let mut g = c.benchmark_group("exec_tiers");
    for (label, mode) in [
        ("interp", ExecMode::Interpret),
        ("mcc", ExecMode::Mcc),
        ("jit_warm", ExecMode::Jit),
        ("opt_warm", ExecMode::Falcon),
    ] {
        let mut m = Majic::with_mode(mode);
        m.load_source(SUMSQ).unwrap();
        // Warm the repository so the measured loop is pure execution.
        m.call("sumsq", &[n.clone()], 1).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| m.call("sumsq", &[n.clone()], 1).unwrap())
        });
    }
    g.finish();
}

fn bench_jit_compile_latency(c: &mut Criterion) {
    // The headline claim: JIT compilation is fast enough to run per call.
    let bench = majic_bench::by_name("dirich").unwrap();
    c.bench_function("jit_compile_dirich", |b| {
        b.iter(|| {
            let mut m = Majic::with_mode(ExecMode::Jit);
            m.load_source(bench.source).unwrap();
            // Tiny problem: time is dominated by compilation.
            m.call("dirich", &[Value::scalar(4.0), Value::scalar(1.0)], 1)
                .unwrap()
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let file = parse_source(majic_bench::programs::DIRICH).unwrap();
    let d = disambiguate(&file.functions[0], &HashSet::new());
    let sig = Signature::new(vec![Type::constant(134.0), Type::constant(60.0)]);
    c.bench_function("infer_jit_dirich", |b| {
        b.iter(|| infer_jit(&d, &sig, InferOptions::default(), &NoOracle))
    });
}

fn bench_repository_lookup(c: &mut Criterion) {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source("function y = f(x)\ny = x + 1;\n").unwrap();
    m.call("f", &[Value::scalar(1.0)], 1).unwrap();
    c.bench_function("repo_hit_call", |b| {
        b.iter(|| m.call("f", &[Value::scalar(1.0)], 1).unwrap())
    });
}

criterion_group!(
    benches,
    bench_exec_tiers,
    bench_jit_compile_latency,
    bench_inference,
    bench_repository_lookup
);
criterion_main!(benches);
