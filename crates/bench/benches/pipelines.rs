//! Micro-benchmarks of the compiler pipelines themselves (testkit
//! harness — the offline replacement for criterion): interpreter vs JIT
//! vs optimizing backend on a scalar kernel, JIT inference speed, and
//! repository lookup.

use majic::{ExecMode, Majic, Value};
use majic_analysis::disambiguate;
use majic_ast::parse_source;
use majic_infer::{infer_jit, InferOptions, NoOracle, Signature};
use majic_testkit::bench::{bench, group};
use majic_types::Type;
use std::collections::HashSet;

const SUMSQ: &str = "function s = sumsq(n)\ns = 0;\nfor k = 1:n\n s = s + k * k;\nend\n";

fn bench_exec_tiers() {
    let n = Value::scalar(2000.0);
    group("exec_tiers");
    for (label, mode) in [
        ("interp", ExecMode::Interpret),
        ("mcc", ExecMode::Mcc),
        ("jit_warm", ExecMode::Jit),
        ("opt_warm", ExecMode::Falcon),
    ] {
        let mut m = Majic::with_mode(mode);
        m.load_source(SUMSQ).unwrap();
        // Warm the repository so the measured loop is pure execution.
        m.call("sumsq", std::slice::from_ref(&n), 1).unwrap();
        bench(label, || {
            m.call("sumsq", std::slice::from_ref(&n), 1).unwrap();
        });
    }
}

fn bench_jit_compile_latency() {
    // The headline claim: JIT compilation is fast enough to run per call.
    let b = majic_bench::by_name("dirich").unwrap();
    bench("jit_compile_dirich", || {
        let mut m = Majic::with_mode(ExecMode::Jit);
        m.load_source(b.source).unwrap();
        // Tiny problem: time is dominated by compilation.
        m.call("dirich", &[Value::scalar(4.0), Value::scalar(1.0)], 1)
            .unwrap();
    });
}

fn bench_inference() {
    let file = parse_source(majic_bench::programs::DIRICH).unwrap();
    let d = disambiguate(&file.functions[0], &HashSet::new());
    let sig = Signature::new(vec![Type::constant(134.0), Type::constant(60.0)]);
    bench("infer_jit_dirich", || {
        infer_jit(&d, &sig, InferOptions::default(), &NoOracle);
    });
}

fn bench_repository_lookup() {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.load_source("function y = f(x)\ny = x + 1;\n").unwrap();
    m.call("f", &[Value::scalar(1.0)], 1).unwrap();
    bench("repo_hit_call", || {
        m.call("f", &[Value::scalar(1.0)], 1).unwrap();
    });
}

fn main() {
    bench_exec_tiers();
    bench_jit_compile_latency();
    bench_inference();
    bench_repository_lookup();
}
