//! Ablations of the design choices DESIGN.md calls out (testkit
//! harness — the offline replacement for criterion): oversizing on
//! resize-heavy code, small-vector unrolling, and subscript-check
//! removal.

use majic::{ExecMode, InferOptions, Majic, Value};
use majic_testkit::bench::{bench, group};

const GROWER: &str =
    "function n = grower(k)\nv(1) = 0;\nfor i = 2:k\n v(i) = v(i-1) + 1;\nend\nn = v(k);\n";

const SMALLVEC: &str = "function e = smallvec(n)\nr = [1 0];\nv = [0 6.28];\nfor k = 1:n\n v = v + 0.001 * r;\n r = r + 0.001 * v;\nend\ne = r(1) + v(2);\n";

const CHECKS: &str = "function s = checks(n)\nA = zeros(1, n);\nfor k = 1:n\n A(k) = k;\nend\ns = 0;\nfor k = 1:n\n s = s + A(k);\nend\n";

fn warm(src: &str, entry: &str, oversize: bool, ranges: bool) -> Majic {
    let mut m = Majic::with_mode(ExecMode::Jit);
    m.options.oversize = oversize;
    m.options.infer = InferOptions {
        range_propagation: ranges,
        ..InferOptions::default()
    };
    m.load_source(src).unwrap();
    let _ = m.call(entry, &[Value::scalar(64.0)], 1);
    m
}

fn bench_oversizing() {
    let n = Value::scalar(20_000.0);
    group("oversizing");
    for (label, oversize) in [("with_headroom", true), ("exact_resize", false)] {
        let mut m = warm(GROWER, "grower", oversize, true);
        bench(label, || {
            m.call("grower", std::slice::from_ref(&n), 1).unwrap();
        });
    }
}

fn bench_small_vectors() {
    let n = Value::scalar(20_000.0);
    let mut m = warm(SMALLVEC, "smallvec", true, true);
    bench("small_vector_loop", || {
        m.call("smallvec", std::slice::from_ref(&n), 1).unwrap();
    });
}

fn bench_subscript_checks() {
    let n = Value::scalar(50_000.0);
    group("subscript_checks");
    for (label, ranges) in [("removed", true), ("kept_no_ranges", false)] {
        let mut m = warm(CHECKS, "checks", true, ranges);
        bench(label, || {
            m.call("checks", std::slice::from_ref(&n), 1).unwrap();
        });
    }
}

fn main() {
    bench_oversizing();
    bench_small_vectors();
    bench_subscript_checks();
}
