//! Responsiveness of speculative compilation: first-call latency with
//! background spec workers on vs. off.
//!
//! The paper's motivation for speculation is *responsiveness* — the
//! optimizing compiler runs off the user's critical path. This figure
//! quantifies it. For every benchmark we measure the latency from
//! "sources loaded" to "first call answered" under three regimes:
//!
//! * `jit` — no speculation at all: the fast JIT compiles on the first
//!   miss (the responsiveness baseline).
//! * `spec-sync` — the seed behaviour: [`majic::Session::speculate_all`] blocks
//!   the session until every optimized version is built, *then* the
//!   call runs.
//! * `spec-async` — background workers ([`majic::Session::speculate_background`])
//!   compile while the session answers immediately via the JIT; the
//!   first call must not wait for them.
//!
//! The acceptance target: `spec-async` first-call latency within 10% of
//! pure JIT (plus measurement noise), while `spec-sync` pays the whole
//! optimizing-backend latency up front. Results are checked bitwise
//! against the synchronous path.
//!
//! ```text
//! cargo run --release -p majic-bench --bin figure_responsiveness -- --workers 4
//! ```

use majic::{ExecMode, Majic, Value};
use majic_bench::{all, harness, Benchmark};
use std::time::{Duration, Instant};

fn session(b: &Benchmark, cfg: &harness::MeasureConfig) -> Majic {
    let mut m = Majic::with_options(cfg.engine_options(ExecMode::Spec));
    m.load_source(b.source).expect("benchmark parses");
    m
}

/// First-call latency and result under one regime. `best_of` fresh
/// sessions; the best latency is reported (paper §3.2 methodology).
///
/// `setup` runs *outside* the timed window (one-time session setup,
/// e.g. spawning the worker pool — its background jobs still race the
/// timed call); `blocking_prepare` runs *inside* it (work that holds up
/// the session, e.g. synchronous speculation).
fn first_call(
    b: &Benchmark,
    cfg: &harness::MeasureConfig,
    best_of: usize,
    args: &[Value],
    setup: impl Fn(&mut Majic),
    blocking_prepare: impl Fn(&mut Majic),
) -> (Duration, f64) {
    let mut best = Duration::MAX;
    let mut result = f64::NAN;
    for _ in 0..best_of {
        let mut m = session(b, cfg);
        setup(&mut m);
        let t0 = Instant::now();
        blocking_prepare(&mut m);
        let out = m
            .call(b.entry, args, 1)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let took = t0.elapsed();
        if took < best {
            best = took;
            result = out
                .first()
                .and_then(|v| v.to_scalar().ok())
                .unwrap_or(f64::NAN);
        }
    }
    (best, result)
}

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    let workers: usize = {
        let argv: Vec<String> = std::env::args().collect();
        argv.iter()
            .position(|a| a == "--workers")
            .and_then(|i| argv.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(2)
    };
    // First-call latency is compile-dominated, so a small problem size
    // makes the responsiveness gap starkest; override with --scale.
    let scale = cfg.scale.min(0.05);
    const BEST_OF: usize = 3;

    println!("Figure R: first-call latency, speculation on vs. off ({workers} workers, scale {scale:.2})");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}  results",
        "benchmark", "jit (ms)", "spec-sync", "spec-async", "async/jit"
    );

    let mut ratios = Vec::new();
    for b in all() {
        let args = (b.args)(scale);

        let (t_jit, r_jit) = first_call(&b, &cfg, BEST_OF, &args, |_| {}, |_| {});
        let (t_sync, r_sync) = first_call(
            &b,
            &cfg,
            BEST_OF,
            &args,
            |_| {},
            |m| {
                m.speculate_all();
            },
        );
        let (t_async, r_async) = first_call(
            &b,
            &cfg,
            BEST_OF,
            &args,
            |m| m.speculate_background(workers),
            |_| {},
        );

        // The repository safety check guarantees every regime computes
        // the same function: results must match bitwise.
        let identical =
            (r_jit.to_bits() == r_sync.to_bits()) && (r_sync.to_bits() == r_async.to_bits());
        let ratio = t_async.as_secs_f64() / t_jit.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3} {:>10.2}  {}",
            b.name,
            t_jit.as_secs_f64() * 1e3,
            t_sync.as_secs_f64() * 1e3,
            t_async.as_secs_f64() * 1e3,
            ratio,
            if identical {
                "bitwise-identical"
            } else {
                "MISMATCH"
            }
        );
        assert!(identical, "{}: cross-regime result mismatch", b.name);
    }

    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    println!("\nmedian spec-async / jit first-call latency: {median:.2} (target ≤ 1.10)");
}
