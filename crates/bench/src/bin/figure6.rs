//! Figure 6: the composition of JIT execution — how much of each
//! JIT-compiled benchmark's runtime goes to disambiguation, type
//! inference, code generation and actual execution.

use majic_bench::{all, harness, Mode};

fn main() {
    let _trace = harness::trace_from_env();
    let mut cfg = harness::config_from_args();
    cfg.runs = 1; // the breakdown comes from the compiling run
    println!(
        "Figure 6: composition of JIT execution (scale {:.2}), % of total runtime",
        cfg.scale
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>11}",
        "benchmark", "disamb", "typeinf", "codegen", "exec", "total (ms)"
    );
    for b in all() {
        let m = harness::measure(&b, Mode::Jit, &cfg);
        let p = m.phases;
        let total = p.total().as_secs_f64().max(1e-12);
        let pct = |d: std::time::Duration| 100.0 * d.as_secs_f64() / total;
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>11.2}",
            b.name,
            pct(p.disambiguation),
            pct(p.inference),
            pct(p.codegen),
            pct(p.execution),
            total * 1e3
        );
    }
}
