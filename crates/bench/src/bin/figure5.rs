//! Figure 5: the MIPS platform — identical to `figure4 --platform mips`
//! (the paper attributes the difference entirely to native-backend
//! quality).

use majic_bench::{all, harness, Mode};

fn main() {
    let _trace = harness::trace_from_env();
    let mut cfg = harness::config_from_args();
    cfg.platform = majic::Platform::Mips;
    println!(
        "Figure 5: speedup over the interpreter (Mips backend, scale {:.2})",
        cfg.scale
    );
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "ti (ms)", "mmc", "falcon", "jit", "spec"
    );
    for b in all() {
        let ti = harness::measure(&b, Mode::Interp, &cfg).runtime;
        let mut row = format!("{:<10} {:>9.1}", b.name, ti.as_secs_f64() * 1e3);
        for mode in [Mode::Mcc, Mode::Falcon, Mode::Jit, Mode::Spec] {
            let tc = harness::measure(&b, mode, &cfg).runtime;
            let s = ti.as_secs_f64() / tc.as_secs_f64().max(1e-9);
            row.push(' ');
            row.push_str(&harness::fmt_speedup(s));
        }
        println!("{row}");
    }
}
