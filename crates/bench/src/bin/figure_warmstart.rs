//! Warm-start responsiveness: first-call latency of a session that
//! reloads compiled code from the persistent repository cache vs. a
//! cold session that must JIT from scratch.
//!
//! For every benchmark we measure the latency from "session created" to
//! "first call answered" twice:
//!
//! * `cold` — an empty repository: the first call pays parse + inference
//!   + code generation + execution (the JIT bars of Figure 6).
//! * `warm` — a cache file populated by a previous session is attached
//!   before the sources load: the first call dispatches through the
//!   repository's signature check straight into deserialized code.
//!
//! The repository safety gates still apply on the warm path (build
//! fingerprint, per-entry checksums, per-function source hashes), so a
//! warm session can never compute anything different: results are
//! asserted bitwise-identical. The acceptance target is warm ≤ 0.5×
//! cold on the golden benchmark set.
//!
//! ```text
//! cargo run --release -p majic-bench --bin figure_warmstart -- \
//!     [--scale X] [--runs N] [--json PATH]
//! ```
//!
//! With `--json PATH` the per-benchmark numbers are also written as a
//! JSON document (consumed by CI as a workflow artifact).

use majic::{ExecMode, Majic, Value};
use majic_bench::{all, harness, Benchmark};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn session(cfg: &harness::MeasureConfig) -> Majic {
    Majic::with_options(cfg.engine_options(ExecMode::Jit))
}

/// One timed first call. The timed window covers everything a user at a
/// fresh prompt would wait for: (optional) cache attach, source load,
/// and the call itself.
fn first_call(
    b: &Benchmark,
    cfg: &harness::MeasureConfig,
    args: &[Value],
    cache: Option<&Path>,
) -> (Duration, f64, usize) {
    let mut m = session(cfg);
    let t0 = Instant::now();
    if let Some(path) = cache {
        m.attach_cache(path);
    }
    m.load_source(b.source).expect("benchmark parses");
    let out = m
        .call(b.entry, args, 1)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let took = t0.elapsed();
    let installed = m.cache_report().installed;
    let result = out
        .first()
        .and_then(|v| v.to_scalar().ok())
        .unwrap_or(f64::NAN);
    // Don't let the drop-flush write back into the shared cache file
    // while other runs race it: detach by saving explicitly first.
    if cache.is_some() {
        m.save_cache().expect("cache flush");
    }
    (took, result, installed)
}

struct Row {
    name: &'static str,
    cold: Duration,
    warm: Duration,
    ratio: f64,
    identical: bool,
    warm_installs: usize,
}

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    let argv: Vec<String> = std::env::args().collect();
    let json_path: Option<PathBuf> = argv
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| argv.get(i + 1))
        .map(PathBuf::from);
    // First-call latency is compile-dominated; a small problem size
    // isolates the compile-vs-load contrast. Override with --scale.
    let scale = cfg.scale.min(0.05);
    let best_of = cfg.runs.max(1);

    let cache_dir = std::env::temp_dir().join(format!("majic-warmstart-{}", std::process::id()));
    std::fs::create_dir_all(&cache_dir).expect("create cache dir");

    println!("Figure W: first-call latency, warm cache vs. cold JIT (scale {scale:.2}, best of {best_of})");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>9}  results",
        "benchmark", "cold (ms)", "warm (ms)", "warm/cold", "installs"
    );

    let mut rows = Vec::new();
    for b in all() {
        let args = (b.args)(scale);
        let cache = cache_dir.join(format!("{}.majiccache", b.name));

        // Populate the cache once, outside every timed window.
        {
            let mut m = session(&cfg);
            m.attach_cache(&cache);
            m.load_source(b.source).expect("benchmark parses");
            m.call(b.entry, &args, 1)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            m.save_cache().expect("cache populate");
        }

        let mut cold = Duration::MAX;
        let mut warm = Duration::MAX;
        let mut r_cold = f64::NAN;
        let mut r_warm = f64::NAN;
        let mut warm_installs = 0usize;
        for _ in 0..best_of {
            let (t, r, _) = first_call(&b, &cfg, &args, None);
            if t < cold {
                cold = t;
                r_cold = r;
            }
            let (t, r, installs) = first_call(&b, &cfg, &args, Some(&cache));
            if t < warm {
                warm = t;
                r_warm = r;
                warm_installs = installs;
            }
        }

        assert!(
            warm_installs > 0,
            "{}: warm session installed nothing from the cache",
            b.name
        );
        let identical = r_cold.to_bits() == r_warm.to_bits();
        assert!(identical, "{}: warm/cold result mismatch", b.name);
        let ratio = warm.as_secs_f64() / cold.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>10.2} {:>9}  {}",
            b.name,
            cold.as_secs_f64() * 1e3,
            warm.as_secs_f64() * 1e3,
            ratio,
            warm_installs,
            if identical {
                "bitwise-identical"
            } else {
                "MISMATCH"
            }
        );
        rows.push(Row {
            name: b.name,
            cold,
            warm,
            ratio,
            identical,
            warm_installs,
        });
    }

    let mut ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    println!("\nmedian warm / cold first-call latency: {median:.2} (target ≤ 0.50)");

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"warmstart\",\n");
        out.push_str(&format!("  \"scale\": {scale},\n"));
        out.push_str(&format!("  \"best_of\": {best_of},\n"));
        out.push_str(&format!("  \"median_ratio\": {median},\n"));
        out.push_str("  \"benchmarks\": [\n");
        for (k, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cold_ms\": {}, \"warm_ms\": {}, \"ratio\": {}, \"identical\": {}, \"warm_installs\": {}}}{}\n",
                r.name,
                r.cold.as_secs_f64() * 1e3,
                r.warm.as_secs_f64() * 1e3,
                r.ratio,
                r.identical,
                r.warm_installs,
                if k + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json");
        println!("wrote {}", path.display());
    }

    let _ = std::fs::remove_dir_all(&cache_dir);
}
