//! Figure 7: disabling individual JIT optimizations — range propagation
//! ("no ranges"), minimum-shape propagation ("no min. shapes"), register
//! allocation ("no regalloc") — and reporting performance relative to
//! the fully optimized JIT.

use majic::{InferOptions, RegAllocMode};
use majic_bench::{all, harness, Mode};

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    println!(
        "Figure 7: JIT performance with optimizations disabled (scale {:.2}), % of full JIT",
        cfg.scale
    );
    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "benchmark", "no ranges", "no min. shapes", "no regalloc"
    );
    for b in all() {
        let full = harness::measure(&b, Mode::Jit, &cfg).runtime.as_secs_f64();
        let mut no_ranges = cfg;
        no_ranges.infer = InferOptions {
            range_propagation: false,
            ..InferOptions::default()
        };
        let mut no_shapes = cfg;
        no_shapes.infer = InferOptions {
            min_shape_propagation: false,
            ..InferOptions::default()
        };
        let mut no_regalloc = cfg;
        no_regalloc.regalloc = RegAllocMode::SpillEverything;
        let rel = |c: &harness::MeasureConfig| {
            let t = harness::measure(&b, Mode::Jit, c).runtime.as_secs_f64();
            100.0 * full / t.max(1e-12)
        };
        println!(
            "{:<10} {:>9.0}% {:>13.0}% {:>11.0}%",
            b.name,
            rel(&no_ranges),
            rel(&no_shapes),
            rel(&no_regalloc)
        );
    }
}
