//! Tiered recompilation at steady state: per-call runtime once the
//! hotness profile has promoted a function to tier-1, versus a session
//! pinned to tier-0 JIT code forever.
//!
//! For every benchmark we run two arms with identical call sequences:
//!
//! * `tier-0` — promotion disabled: every call dispatches the code the
//!   first-call JIT produced.
//! * `tiered` — hotness threshold 1: the first call triggers a
//!   background recompile through the optimizing pipeline, we wait for
//!   it to publish, and subsequent calls dispatch tier-1 code.
//!
//! Both arms then make the same number of warm-up and measured calls;
//! the per-call time is the best of the measured calls (the paper's
//! §3.2 best-of-runs basis), so the numbers describe steady-state
//! throughput — compile time is off the clock in both arms (tier-0
//! compiled before the window, tier-1 in the background). Promotion must never change answers, so every call
//! is asserted bitwise-identical against the same call index in the
//! other arm (call-for-call, because some benchmarks advance the
//! session's `rand` stream between calls).
//!
//! The acceptance target is a median steady-state speedup ≥ 1.15× on
//! the loop-heavy Scalar group (dirich, finedif, icn, mandel, crnich) —
//! the programs where the optimizing backend's preallocation and loop
//! optimizations pay off most.
//!
//! ```text
//! cargo run --release -p majic-bench --bin figure_tiered -- \
//!     [--scale X] [--runs N] [--platform mips|sparc] [--json PATH]
//! ```
//!
//! The default platform is MIPS: the simulated SPARC backend disables
//! loop-invariant code motion, which is part of what tier-1 buys.
//!
//! With `--json PATH` the per-benchmark numbers are also written as a
//! JSON document (consumed by CI as a workflow artifact).

use majic::{ExecMode, Majic, Platform, Value};
use majic_bench::{all, harness, Benchmark, Category};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Calls that warm the dispatch path but are not measured.
const WARMUP_CALLS: usize = 3;
/// Measured calls per arm; the per-call time is the best of these
/// (§3.2's best-of-runs basis — the minimum is what the code can do,
/// everything above it is scheduler noise).
const MEASURED_CALLS: usize = 15;

/// Exact bit-level digest of a value: every element, no rounding.
fn digest(v: &Value) -> Vec<u64> {
    match v {
        Value::Real(m) => m.iter().map(|x| x.to_bits()).collect(),
        Value::Bool(m) => m.iter().map(|&b| u64::from(b)).collect(),
        Value::Complex(m) => m
            .iter()
            .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
            .collect(),
        Value::Str(s) => s.bytes().map(u64::from).collect(),
    }
}

/// One arm mid-measurement: a prepared session plus everything it has
/// produced so far.
struct Arm {
    m: Majic,
    digests: Vec<Vec<u64>>,
    samples: Vec<Duration>,
}

impl Arm {
    /// Build a session, pay the tier-0 compile on the first call, and
    /// (for the tiered arm) wait for the background promotion to
    /// publish before the measured window opens.
    fn prepare(b: &Benchmark, cfg: &harness::MeasureConfig, args: &[Value], tiered: bool) -> Arm {
        let mut options = cfg.engine_options(ExecMode::Jit);
        options.tier.enabled = tiered;
        options.tier.threshold = 1;
        let mut m = Majic::with_options(options);
        m.load_source(b.source).expect("benchmark parses");

        let mut digests = Vec::new();
        let out = m
            .call(b.entry, args, 1)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        digests.push(digest(&out[0]));
        if tiered {
            m.background().wait();
            let [_, t1] = m.repository().tier_versions();
            assert!(t1 > 0, "{}: nothing promoted at threshold 1", b.name);
        }
        for _ in 0..WARMUP_CALLS {
            let out = m.call(b.entry, args, 1).expect("warm-up call");
            digests.push(digest(&out[0]));
        }
        Arm {
            m,
            digests,
            samples: Vec::with_capacity(MEASURED_CALLS),
        }
    }

    /// One timed call, recorded in the sample and digest sequences.
    fn sample(&mut self, b: &Benchmark, args: &[Value]) {
        let t0 = Instant::now();
        let out = self.m.call(b.entry, args, 1).expect("measured call");
        self.samples.push(t0.elapsed());
        self.digests.push(digest(&out[0]));
    }

    fn per_call(&self) -> Duration {
        self.samples
            .iter()
            .copied()
            .min()
            .expect("at least one sample")
    }
}

struct Row {
    name: &'static str,
    category: Category,
    tier0: Duration,
    tiered: Duration,
    speedup: f64,
}

fn main() {
    let _trace = harness::trace_from_env();
    let mut cfg = harness::config_from_args();
    let argv: Vec<String> = std::env::args().collect();
    if !argv.iter().any(|a| a == "--platform") {
        cfg.platform = Platform::Mips;
    }
    let json_path: Option<PathBuf> = argv
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| argv.get(i + 1))
        .map(PathBuf::from);
    // Steady state is execution-dominated; the default quarter scale
    // keeps the 16-benchmark sweep quick while each call is long enough
    // for the loops to dominate both dispatch and timer noise.
    let scale = cfg.scale;

    println!(
        "Figure T: steady-state per-call runtime, tiered vs. perpetual tier-0 \
         (scale {scale:.2}, {} platform, best of {MEASURED_CALLS})",
        match cfg.platform {
            Platform::Mips => "mips",
            Platform::Sparc => "sparc",
        }
    );
    println!(
        "{:<10} {:>9} {:>13} {:>12} {:>9}  results",
        "benchmark", "category", "tier-0 (ms)", "tiered (ms)", "speedup"
    );

    let mut rows = Vec::new();
    for b in all() {
        let args = (b.args)(scale);
        let mut t0 = Arm::prepare(&b, &cfg, &args, false);
        let mut t1 = Arm::prepare(&b, &cfg, &args, true);
        // Interleave the two arms' measured calls so slow drift in the
        // machine (frequency scaling, cache pressure from neighbours)
        // lands on both arms evenly instead of biasing the ratio.
        for _ in 0..MEASURED_CALLS {
            t0.sample(&b, &args);
            t1.sample(&b, &args);
        }
        assert_eq!(
            t0.digests, t1.digests,
            "{}: tiered arm diverged from tier-0 (call-for-call)",
            b.name
        );
        assert!(
            t1.m.repository().stats().tier1_hits > 0,
            "{}: promoted version never dispatched",
            b.name
        );
        let (t0, t1) = (t0.per_call(), t1.per_call());
        let speedup = t0.as_secs_f64() / t1.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>9} {:>13.3} {:>12.3} {:>9}  bitwise-identical",
            b.name,
            format!("{:?}", b.category),
            t0.as_secs_f64() * 1e3,
            t1.as_secs_f64() * 1e3,
            harness::fmt_speedup(speedup).trim(),
        );
        rows.push(Row {
            name: b.name,
            category: b.category,
            tier0: t0,
            tiered: t1,
            speedup,
        });
    }

    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let scalar = median(
        rows.iter()
            .filter(|r| r.category == Category::Scalar)
            .map(|r| r.speedup)
            .collect(),
    );
    let overall = median(rows.iter().map(|r| r.speedup).collect());
    println!("\nmedian steady-state speedup, Scalar group: {scalar:.2} (target ≥ 1.15)");
    println!("median steady-state speedup, all 16:       {overall:.2}");

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"tiered\",\n");
        out.push_str(&format!("  \"scale\": {scale},\n"));
        out.push_str(&format!("  \"measured_calls\": {MEASURED_CALLS},\n"));
        out.push_str(&format!("  \"median_speedup_scalar\": {scalar},\n"));
        out.push_str(&format!("  \"median_speedup_all\": {overall},\n"));
        out.push_str("  \"benchmarks\": [\n");
        for (k, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"category\": \"{:?}\", \"tier0_ms\": {}, \"tiered_ms\": {}, \"speedup\": {}}}{}\n",
                r.name,
                r.category,
                r.tier0.as_secs_f64() * 1e3,
                r.tiered.as_secs_f64() * 1e3,
                r.speedup,
                if k + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json");
        println!("wrote {}", path.display());
    }
}
