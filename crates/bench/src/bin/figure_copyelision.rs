//! Copy elision under copy-on-write values: uniqueness-driven in-place
//! updates vs. the pre-CoW "every store copies" discipline.
//!
//! Two runtime-level kernels contrast the CoW fast path against a
//! baseline that forces the physical copy the old representation would
//! have taken:
//!
//! * `update` — fill an n-element row vector one element at a time. The
//!   CoW loop owns its buffer uniquely, so every store is in place
//!   (O(n) total). The baseline deep-copies the buffer before each
//!   store — what a value-semantics engine does when the stored value
//!   is still shared with the environment (O(n²) total).
//! * `growth` — append one element at a time through `grow`. The CoW
//!   loop oversizes (paper §2.6.1), so appends almost always stay
//!   within the allocation; the baseline re-layouts to the exact new
//!   size on every append.
//!
//! A third, engine-level section runs a compiled element-update loop
//! end to end and asserts — via the `runtime.matrix.deep_copy` trace
//! counter — that the uniquely-owned update loop records **zero** deep
//! copies. The acceptance targets are `update` ≥ 2× over baseline and
//! a zero counter delta in both the kernel and the compiled loop.
//!
//! ```text
//! cargo run --release -p majic-bench --bin figure_copyelision -- \
//!     [--scale X] [--runs N] [--json PATH]
//! ```
//!
//! With `--json PATH` the numbers are also written as a JSON document
//! (consumed by CI as a workflow artifact).

use majic::{ExecMode, Majic, Value};
use majic_bench::harness;
use majic_runtime::Matrix;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn deep_copies() -> u64 {
    majic_trace::counter("runtime.matrix.deep_copy").get()
}

/// Fill via uniquely-owned in-place stores. Returns a checksum so the
/// work cannot be optimized away.
fn update_cow(n: usize) -> f64 {
    let mut m: Matrix<f64> = Matrix::zeros(1, n);
    for k in 0..n {
        m.set_linear(k, k as f64);
    }
    m.get_linear(n - 1)
}

/// Pre-CoW discipline: the stored value is still shared, so every store
/// pays a full snapshot first.
fn update_baseline(n: usize) -> f64 {
    let mut m: Matrix<f64> = Matrix::zeros(1, n);
    for k in 0..n {
        m = m.deep_clone();
        m.set_linear(k, k as f64);
    }
    m.get_linear(n - 1)
}

/// Append-one-at-a-time with oversizing: amortized O(1) per append.
fn growth_cow(n: usize) -> f64 {
    let mut m: Matrix<f64> = Matrix::zeros(1, 1);
    for k in 1..n {
        m.grow(1, k + 1, true);
        m.set_linear(k, k as f64);
    }
    m.get_linear(n - 1)
}

/// Exact re-layout on every append.
fn growth_baseline(n: usize) -> f64 {
    let mut m: Matrix<f64> = Matrix::zeros(1, 1);
    for k in 1..n {
        m.grow(1, k + 1, false);
        m.set_linear(k, k as f64);
    }
    m.get_linear(n - 1)
}

/// Best-of-`runs` wall time of `f`, with the deep-copy counter delta of
/// the best run.
fn measure(runs: usize, f: impl Fn() -> f64) -> (Duration, u64, f64) {
    let mut best = Duration::MAX;
    let mut copies = u64::MAX;
    let mut result = f64::NAN;
    for _ in 0..runs {
        let c0 = deep_copies();
        let t0 = Instant::now();
        let r = f();
        let took = t0.elapsed();
        if took < best {
            best = took;
            copies = deep_copies() - c0;
            result = r;
        }
    }
    (best, copies, result)
}

type Kernel = fn(usize) -> f64;

struct Row {
    name: &'static str,
    cow: Duration,
    baseline: Duration,
    speedup: f64,
    cow_copies: u64,
}

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    let json_path: Option<PathBuf> = {
        let argv: Vec<String> = std::env::args().collect();
        argv.iter()
            .position(|a| a == "--json")
            .and_then(|i| argv.get(i + 1))
            .map(PathBuf::from)
    };
    let n = ((4096.0 * cfg.scale) as usize).max(256);
    let best_of = cfg.runs.max(1);

    println!("Figure C: copy elision under copy-on-write values (n = {n}, best of {best_of})");
    println!(
        "{:<8} {:>12} {:>14} {:>9} {:>12}",
        "kernel", "cow (ms)", "baseline (ms)", "speedup", "cow copies"
    );

    let kernels: [(&'static str, Kernel, Kernel); 2] = [
        ("update", update_cow, update_baseline),
        ("growth", growth_cow, growth_baseline),
    ];
    let mut rows = Vec::new();
    for (name, cow, baseline) in kernels {
        let (t_cow, copies, r_cow) = measure(best_of, || cow(n));
        let (t_base, _, r_base) = measure(best_of, || baseline(n));
        assert_eq!(
            r_cow.to_bits(),
            r_base.to_bits(),
            "{name}: cow and baseline must compute the same value"
        );
        assert_eq!(
            copies, 0,
            "{name}: the uniquely-owned kernel must record zero deep copies"
        );
        let speedup = t_base.as_secs_f64() / t_cow.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {:>12.3} {:>14.3} {:>9.1} {:>12}",
            name,
            t_cow.as_secs_f64() * 1e3,
            t_base.as_secs_f64() * 1e3,
            speedup,
            copies
        );
        rows.push(Row {
            name,
            cow: t_cow,
            baseline: t_base,
            speedup,
            cow_copies: copies,
        });
    }

    // Engine-level: the same update loop, compiled and run end to end,
    // must not deep-copy either (the VM takes the array out of its slot
    // to store, and dead temporaries are moved, not cloned).
    let source = "function r = f(n)\na = zeros(1, n);\nfor k = 1:n\na(k) = k;\nend\nr = sum(a);\n";
    let mut session = Majic::with_options(cfg.engine_options(ExecMode::Jit));
    session.load_source(source).expect("parses");
    session
        .call("f", &[Value::scalar(8.0)], 1)
        .expect("warm-up call");
    let mut jit_time = Duration::MAX;
    let mut jit_copies = u64::MAX;
    for _ in 0..best_of {
        let c0 = deep_copies();
        let t0 = Instant::now();
        let out = session
            .call("f", &[Value::scalar(n as f64)], 1)
            .expect("compiled update loop");
        let took = t0.elapsed();
        let expect = (n * (n + 1)) as f64 / 2.0;
        assert_eq!(out[0], Value::scalar(expect), "compiled loop result");
        if took < jit_time {
            jit_time = took;
            jit_copies = deep_copies() - c0;
        }
    }
    assert_eq!(
        jit_copies, 0,
        "the compiled update loop must record zero deep copies"
    );
    println!(
        "\ncompiled update loop (jit): {:.3} ms, {} deep copies",
        jit_time.as_secs_f64() * 1e3,
        jit_copies
    );

    let update = &rows[0];
    println!(
        "update kernel speedup: {:.1} (target ≥ 2.0)",
        update.speedup
    );
    assert!(
        update.speedup >= 2.0,
        "update kernel must be at least 2x faster than the pre-CoW baseline"
    );

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"copyelision\",\n");
        out.push_str(&format!("  \"n\": {n},\n"));
        out.push_str(&format!("  \"best_of\": {best_of},\n"));
        out.push_str("  \"kernels\": [\n");
        for (k, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cow_ms\": {}, \"baseline_ms\": {}, \"speedup\": {}, \"cow_deep_copies\": {}}}{}\n",
                r.name,
                r.cow.as_secs_f64() * 1e3,
                r.baseline.as_secs_f64() * 1e3,
                r.speedup,
                r.cow_copies,
                if k + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"jit_update_loop\": {{\"ms\": {}, \"deep_copies\": {}}}\n",
            jit_time.as_secs_f64() * 1e3,
            jit_copies
        ));
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write json");
        println!("wrote {}", path.display());
    }
}
