//! Table 1: the benchmark inventory — name, description, problem size,
//! line count, interpreter runtime on this host.

use majic_bench::{all, harness, line_count, Mode};

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    println!("Table 1: MaJIC benchmarks (scale {:.2})", cfg.scale);
    println!(
        "{:<10} {:<48} {:>14} {:>6} {:>12}",
        "benchmark", "short description", "problem size", "lines", "runtime (s)"
    );
    for b in all() {
        let m = harness::measure(&b, Mode::Interp, &cfg);
        println!(
            "{:<10} {:<48} {:>14} {:>6} {:>12.3}",
            b.name,
            b.description,
            b.size,
            line_count(&b),
            m.runtime.as_secs_f64()
        );
    }
}
