//! CI gate for `MAJIC_EXPLAIN=json:…` output: parse an audit log with
//! the workspace's own JSON parser and verify the schema documented in
//! `docs/EXPLAIN_FORMAT.md` before the file is archived as an artifact.
//!
//! ```text
//! MAJIC_EXPLAIN=json:audit.json cargo run --release -p majic-bench --bin figure_responsiveness
//! cargo run --release -p majic-bench --bin audit_check -- audit.json
//! ```
//!
//! Exits nonzero (with a reason on stderr) when the file is missing,
//! malformed, or structurally out of contract — so a schema regression
//! fails the build instead of silently shipping an unreadable artifact.

use majic_testkit::json::Json;
use std::process::ExitCode;

fn check(doc: &Json) -> Result<(usize, usize), String> {
    let records = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("top-level `records` array missing")?;
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("top-level `events` array missing")?;
    for key in ["evicted_records", "evicted_events"] {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("top-level `{key}` count missing"))?;
    }
    if records.is_empty() {
        return Err("no compilation records: auditing was not enabled \
                    while the workload compiled"
            .to_owned());
    }
    for (i, r) in records.iter().enumerate() {
        for key in ["function", "signature", "trigger", "outcome"] {
            r.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("records[{i}] lacks string `{key}`"))?;
        }
        for key in ["widenings", "inlining", "notes"] {
            r.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("records[{i}] lacks array `{key}`"))?;
        }
        r.get("compile_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("records[{i}] lacks `compile_ns`"))?;
    }
    for (i, e) in events.iter().enumerate() {
        for key in ["kind", "function", "detail"] {
            e.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("events[{i}] lacks string `{key}`"))?;
        }
    }
    Ok((records.len(), events.len()))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: audit_check <audit.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("audit_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("audit_check: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&doc) {
        Ok((records, events)) => {
            println!(
                "audit_check: {path} ok — {records} compilation records, {events} session events"
            );
            ExitCode::SUCCESS
        }
        Err(why) => {
            eprintln!("audit_check: {path} violates docs/EXPLAIN_FORMAT.md: {why}");
            ExitCode::FAILURE
        }
    }
}
