//! The paper's §5 hand-optimization experiment: `finedif` with its
//! innermost loop hand-unrolled and common subexpressions eliminated ran
//! "almost 100% faster than the normal JIT-compiled finedif". We compare
//! the stock source under the JIT against (a) a hand-optimized MATLAB
//! source and (b) the optimizing backend doing CSE mechanically.

use majic_bench::{by_name, harness, Benchmark, Category, Mode};

/// finedif with the inner loop unrolled ×2 and `2*(1-r2)` hoisted by
/// hand — the transformation the paper applied manually.
const FINEDIF_HAND: &str = "\
function U = finedif(n, m)
U = zeros(n, m);
h = 1 / (m - 1);
k = 1 / (n - 1);
r = 2 * k / h;
r2 = r * r / 4;
c0 = 2 * (1 - r2);
for j = 2:m-1
  x = (j - 1) * h;
  U(1, j) = sin(pi * x);
  U(2, j) = (1 - r2) * sin(pi * x);
end
for t = 2:n-1
  tm = t - 1;
  tp = t + 1;
  um = U(t, 1);
  uc = U(t, 2);
  j = 2;
  while j + 1 <= m - 1
    up = U(t, j+1);
    upp = U(t, j+2);
    U(tp, j) = c0 * uc + r2 * um + r2 * up - U(tm, j);
    U(tp, j+1) = c0 * up + r2 * uc + r2 * upp - U(tm, j+1);
    um = up;
    uc = upp;
    j = j + 2;
  end
  while j <= m - 1
    up = U(t, j+1);
    U(tp, j) = c0 * uc + r2 * um + r2 * up - U(tm, j);
    um = uc;
    uc = up;
    j = j + 1;
  end
end
";

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    let stock = by_name("finedif").expect("known benchmark");
    let hand = Benchmark {
        source: FINEDIF_HAND,
        ..stock.clone()
    };
    let t_stock = harness::measure(&stock, Mode::Jit, &cfg).runtime;
    let t_hand = harness::measure(&hand, Mode::Jit, &cfg).runtime;
    let t_opt = harness::measure(&stock, Mode::Falcon, &cfg).runtime;
    let _ = Category::Scalar;
    println!(
        "hand-optimization experiment (paper §5), scale {:.2}",
        cfg.scale
    );
    println!(
        "finedif JIT (stock source):        {:>10.2} ms",
        t_stock.as_secs_f64() * 1e3
    );
    println!(
        "finedif JIT (hand-unrolled + CSE): {:>10.2} ms  ({:.0}% faster)",
        t_hand.as_secs_f64() * 1e3,
        100.0 * (t_stock.as_secs_f64() / t_hand.as_secs_f64() - 1.0)
    );
    println!(
        "finedif optimizing backend:        {:>10.2} ms",
        t_opt.as_secs_f64() * 1e3
    );
}
