//! Data-parallel kernel throughput: per-op speedup of the size-gated
//! parallel kernels over the sequential loops, with bitwise-identical
//! outputs as a hard precondition.
//!
//! Each elementwise op (`add`, `sub`, `.*`, `./`, `.^`, unary `-`, `<`,
//! `|`) runs over a large (≥ 1M-element at scale 1) matrix, and the
//! blocked product `*` over a square matrix, once with the kernel pool
//! off and once with `--threads` participating threads. Every parallel
//! output is digested bit-for-bit against the sequential one before any
//! timing is reported — the determinism invariant of `majic_runtime::par`
//! is asserted, not assumed.
//!
//! The ≥ `--target` (default 2.0) median elementwise speedup is only
//! asserted when the host actually has `--threads` hardware threads;
//! on smaller machines the figure still runs, checks determinism, and
//! reports the (meaningless) timings with a note.
//!
//! ```text
//! cargo run --release -p majic-bench --bin figure_parallel -- \
//!     [--scale X] [--runs N] [--threads N] [--target X] [--json PATH]
//! ```

use majic_bench::harness;
use majic_runtime::ops::{self, Cmp};
use majic_runtime::{par, Lcg, Matrix, Value};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Exact bit-level digest of a value: every element, no rounding.
fn digest(v: &Value) -> Vec<u64> {
    match v {
        Value::Real(m) => m.iter().map(|x| x.to_bits()).collect(),
        Value::Bool(m) => m.iter().map(|&b| u64::from(b)).collect(),
        Value::Complex(m) => m
            .iter()
            .flat_map(|c| [c.re.to_bits(), c.im.to_bits()])
            .collect(),
        Value::Str(s) => s.bytes().map(u64::from).collect(),
    }
}

/// A positive pseudorandom matrix (positive keeps `.^` on the real
/// path) with a deterministic seed.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Value {
    let mut lcg = Lcg::seeded(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| 0.5 + lcg.next_f64()).collect();
    Value::Real(Matrix::from_vec(rows, cols, data))
}

/// Best-of-`runs` wall time of `f`.
fn measure(runs: usize, f: &dyn Fn() -> Value) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs {
        let t0 = Instant::now();
        let out = f();
        let took = t0.elapsed();
        assert!(out.numel() > 0, "kernel produced an empty result");
        if took < best {
            best = took;
        }
    }
    best
}

struct Row {
    name: &'static str,
    elementwise: bool,
    seq: Duration,
    par: Duration,
    speedup: f64,
}

fn arg_after(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    let argv: Vec<String> = std::env::args().collect();
    let json_path: Option<PathBuf> = arg_after(&argv, "--json").map(PathBuf::from);
    let threads: usize = arg_after(&argv, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let target: f64 = arg_after(&argv, "--target")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let best_of = cfg.runs.max(1);

    // ~1M elements at scale 1 for the elementwise ops; the product uses
    // a smaller square so its cubic flop count stays comparable.
    let rows = 1024;
    let cols = ((1024.0 * cfg.scale) as usize).max(64);
    let n = rows * cols;
    let mdim = ((320.0 * cfg.scale.sqrt()) as usize).max(48);

    let a = random_matrix(rows, cols, 1);
    let b = random_matrix(rows, cols, 2);
    let ma = random_matrix(mdim, mdim, 3);
    let mb = random_matrix(mdim, mdim, 4);

    type Op = (&'static str, bool, Box<dyn Fn() -> Value>);
    let ops: Vec<Op> = {
        let (a1, b1) = (a.clone(), b.clone());
        let (a2, b2) = (a.clone(), b.clone());
        let (a3, b3) = (a.clone(), b.clone());
        let (a4, b4) = (a.clone(), b.clone());
        let (a5, b5) = (a.clone(), b.clone());
        let a6 = a.clone();
        let (a7, b7) = (a.clone(), b.clone());
        let (a8, b8) = (a.clone(), b.clone());
        vec![
            ("add", true, Box::new(move || ops::add(&a1, &b1).unwrap())),
            ("sub", true, Box::new(move || ops::sub(&a2, &b2).unwrap())),
            (
                "elem_mul",
                true,
                Box::new(move || ops::elem_mul(&a3, &b3).unwrap()),
            ),
            (
                "elem_div",
                true,
                Box::new(move || ops::elem_div(&a4, &b4).unwrap()),
            ),
            (
                "elem_pow",
                true,
                Box::new(move || ops::elem_pow(&a5, &b5).unwrap()),
            ),
            ("neg", true, Box::new(move || ops::neg(&a6).unwrap())),
            (
                "compare_lt",
                true,
                Box::new(move || ops::compare(Cmp::Lt, &a7, &b7).unwrap()),
            ),
            (
                "logical_or",
                true,
                Box::new(move || ops::logical(&a8, &b8, true).unwrap()),
            ),
            ("mul", false, Box::new(move || ops::mul(&ma, &mb).unwrap())),
        ]
    };

    println!(
        "Figure P: data-parallel kernels vs sequential \
         ({rows}x{cols} elementwise, {mdim}x{mdim} product, {threads} threads, best of {best_of})"
    );
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "op", "seq (ms)", "par (ms)", "speedup"
    );

    let mut rows_out: Vec<Row> = Vec::new();
    for (name, elementwise, f) in &ops {
        par::set_threads(0);
        let want = digest(&f());
        let t_seq = measure(best_of, f.as_ref());

        par::set_threads(threads);
        let dispatched_before = majic_trace::counter("kernel.par.dispatch").get();
        let got = digest(&f());
        assert_eq!(
            want, got,
            "{name}: parallel output must be bitwise identical to sequential"
        );
        assert!(
            majic_trace::counter("kernel.par.dispatch").get() > dispatched_before,
            "{name}: op never took the parallel path (below the size gate?)"
        );
        let t_par = measure(best_of, f.as_ref());
        par::set_threads(0);

        let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>9.2}",
            name,
            t_seq.as_secs_f64() * 1e3,
            t_par.as_secs_f64() * 1e3,
            speedup
        );
        rows_out.push(Row {
            name,
            elementwise: *elementwise,
            seq: t_seq,
            par: t_par,
            speedup,
        });
    }

    let mut elem_speedups: Vec<f64> = rows_out
        .iter()
        .filter(|r| r.elementwise)
        .map(|r| r.speedup)
        .collect();
    elem_speedups.sort_by(f64::total_cmp);
    let median = elem_speedups[elem_speedups.len() / 2];

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let asserted = available >= threads;
    println!("\nmedian elementwise speedup: {median:.2} (target ≥ {target})");
    if asserted {
        assert!(
            median >= target,
            "median elementwise speedup {median:.2} below the ≥ {target} target at {threads} threads"
        );
    } else {
        println!(
            "note: host has {available} hardware thread(s) < {threads} requested; \
             determinism verified, speedup target not asserted"
        );
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"parallel\",\n");
        out.push_str(&format!("  \"threads\": {threads},\n"));
        out.push_str(&format!("  \"available_parallelism\": {available},\n"));
        out.push_str(&format!("  \"numel\": {n},\n"));
        out.push_str(&format!("  \"mul_dim\": {mdim},\n"));
        out.push_str(&format!("  \"best_of\": {best_of},\n"));
        out.push_str("  \"ops\": [\n");
        for (k, r) in rows_out.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"elementwise\": {}, \"seq_ms\": {}, \"par_ms\": {}, \"speedup\": {}}}{}\n",
                r.name,
                r.elementwise,
                r.seq.as_secs_f64() * 1e3,
                r.par.as_secs_f64() * 1e3,
                r.speedup,
                if k + 1 < rows_out.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"median_elementwise_speedup\": {median},\n  \"target\": {target},\n  \"target_asserted\": {asserted}\n"
        ));
        out.push_str("}\n");
        std::fs::write(&path, out).expect("write json");
        println!("wrote {}", path.display());
    }
}
