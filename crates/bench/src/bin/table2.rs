//! Table 2: JIT vs. speculative *type inference* — the same optimizing
//! code generator driven by either annotation source, speedups computed
//! without compile time.

use majic_bench::{all, harness, Mode};

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    println!(
        "Table 2: JIT vs. speculative type inference (same backend, no compile time, scale {:.2})",
        cfg.scale
    );
    println!("{:<10} {:>9} {:>9}", "benchmark", "spec.", "JIT");
    for b in all() {
        let ti = harness::measure(&b, Mode::Interp, &cfg)
            .runtime
            .as_secs_f64();
        // Speculative annotations + optimizing backend, compile hidden.
        let spec = harness::measure(&b, Mode::Spec, &cfg).runtime.as_secs_f64();
        // JIT annotations + the same optimizing backend = the FALCON
        // configuration (exact signature, compile excluded).
        let jit_ann = harness::measure(&b, Mode::Falcon, &cfg)
            .runtime
            .as_secs_f64();
        println!(
            "{:<10} {} {}",
            b.name,
            harness::fmt_speedup(ti / spec.max(1e-9)),
            harness::fmt_speedup(ti / jit_ann.max(1e-9)),
        );
    }
}
