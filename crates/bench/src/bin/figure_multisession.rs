//! Multi-session throughput and warm-session responsiveness of the
//! shared [`CompilerService`].
//!
//! Two experiments over the 16 golden benchmarks:
//!
//! * **Throughput** — 1, 2, 4 and 8 concurrent sessions, each on its
//!   own thread against one shared service, load every benchmark and
//!   call each entry point repeatedly. We report aggregate calls/sec
//!   per session count. Every session's *first* call of each benchmark
//!   is digested and must be bitwise-identical to a solo single-session
//!   engine running the same program order — which rules out stale
//!   executions and cross-session leakage under contention.
//!
//! * **Warm sessions** — first-call latency of a fresh session on a
//!   service where another session already compiled the benchmark,
//!   vs. a cold session on a fresh service. Sessions with matching
//!   source share compiled versions through the repository's
//!   closure-hash namespaces, so the warm first call dispatches
//!   straight into compiled code: the acceptance target is a median
//!   warm/cold ratio ≤ 0.5, with bitwise-identical results.
//!
//! ```text
//! cargo run --release -p majic-bench --bin figure_multisession -- \
//!     [--scale X] [--runs N] [--json PATH]
//! ```
//!
//! With `--json PATH` the numbers are also written as a JSON document
//! (consumed by CI as a workflow artifact).

use majic::{CompilerService, ExecMode, Majic, Value};
use majic_bench::{all, harness, Benchmark};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const SESSION_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Calls per benchmark per session in the throughput window. Only the
/// first call is digested: `rand`-driven benchmarks advance their
/// per-session generator on every call, so repeats legitimately
/// differ — but the first calls replay the solo engine's exact
/// program order.
const REPS: usize = 3;

/// Solo ground truth: one single-session engine loads every benchmark
/// and calls each entry once, in order. Returns the result digest per
/// benchmark.
fn solo_digests(cfg: &harness::MeasureConfig, benches: &[Benchmark], scale: f64) -> Vec<u64> {
    let mut m = Majic::with_options(cfg.engine_options(ExecMode::Jit));
    for b in benches {
        m.load_source(b.source).expect("benchmark parses");
    }
    benches
        .iter()
        .map(|b| {
            let out = m
                .call(b.entry, &(b.args)(scale), 1)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            digest(&out)
        })
        .collect()
}

fn digest(out: &[Value]) -> u64 {
    out.first()
        .and_then(|v| v.to_scalar().ok())
        .unwrap_or(f64::NAN)
        .to_bits()
}

/// One throughput run: `n` concurrent sessions over a fresh shared
/// service. Returns (elapsed wall clock, total calls answered).
fn throughput_run(
    cfg: &harness::MeasureConfig,
    benches: &[Benchmark],
    scale: f64,
    expected: &[u64],
    n: usize,
) -> (Duration, usize) {
    let service = CompilerService::with_options(cfg.engine_options(ExecMode::Jit));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..n {
            let service = &service;
            scope.spawn(move || {
                let mut s = service.session();
                for b in benches {
                    s.load_source(b.source).expect("benchmark parses");
                }
                for rep in 0..REPS {
                    for (k, b) in benches.iter().enumerate() {
                        let out = s
                            .call(b.entry, &(b.args)(scale), 1)
                            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
                        if rep == 0 {
                            assert_eq!(
                                digest(&out),
                                expected[k],
                                "{}: session result differs from the solo engine",
                                b.name
                            );
                        }
                    }
                }
            });
        }
    });
    let took = t0.elapsed();
    if n >= 2 {
        let stats = service.repository().stats();
        assert!(
            stats.shared_hits > 0,
            "identical-source sessions never shared compiled code (stats: {stats:?})"
        );
    }
    (took, n * benches.len() * REPS)
}

/// First-call latency of a session: load one benchmark, call it once.
fn first_call(s: &mut majic::Session, b: &Benchmark, args: &[Value]) -> (Duration, u64) {
    let t0 = Instant::now();
    s.load_source(b.source).expect("benchmark parses");
    let out = s
        .call(b.entry, args, 1)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    (t0.elapsed(), digest(&out))
}

struct WarmRow {
    name: &'static str,
    cold: Duration,
    warm: Duration,
    ratio: f64,
}

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    let argv: Vec<String> = std::env::args().collect();
    let json_path: Option<PathBuf> = argv
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| argv.get(i + 1))
        .map(PathBuf::from);
    // First-call latency is compile-dominated; a small problem size
    // isolates the share-vs-compile contrast. Override with --scale.
    let scale = cfg.scale.min(0.05);
    let best_of = cfg.runs.max(1);
    let benches = all();

    println!("Figure M: shared service, concurrent sessions (scale {scale:.2}, best of {best_of})");
    let expected = solo_digests(&cfg, &benches, scale);

    // Experiment 1: aggregate throughput by session count.
    println!(
        "\n{:<10} {:>12} {:>14}  results",
        "sessions", "wall (ms)", "calls/sec"
    );
    let mut throughput = Vec::new();
    for n in SESSION_COUNTS {
        let mut best = Duration::MAX;
        let mut calls = 0usize;
        for _ in 0..best_of {
            let (took, c) = throughput_run(&cfg, &benches, scale, &expected, n);
            if took < best {
                best = took;
                calls = c;
            }
        }
        let rate = calls as f64 / best.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>12.3} {:>14.0}  bitwise-identical",
            n,
            best.as_secs_f64() * 1e3,
            rate
        );
        throughput.push((n, best, rate));
    }

    // Experiment 2: warm-session vs. cold-session first call.
    println!(
        "\n{:<10} {:>12} {:>12} {:>10}  results",
        "benchmark", "cold (ms)", "warm (ms)", "warm/cold"
    );
    let mut rows = Vec::new();
    for b in &benches {
        let args = (b.args)(scale);
        let mut cold = Duration::MAX;
        let mut warm = Duration::MAX;
        let mut d_cold = 0u64;
        let mut d_warm = 0u64;
        for _ in 0..best_of {
            // Cold: a fresh service has compiled nothing.
            {
                let service = CompilerService::with_options(cfg.engine_options(ExecMode::Jit));
                let (t, d) = first_call(&mut service.session(), b, &args);
                if t < cold {
                    cold = t;
                    d_cold = d;
                }
            }
            // Warm: another session on the same service already
            // compiled this benchmark; the new session shares it.
            {
                let service = CompilerService::with_options(cfg.engine_options(ExecMode::Jit));
                first_call(&mut service.session(), b, &args);
                let (t, d) = first_call(&mut service.session(), b, &args);
                if t < warm {
                    warm = t;
                    d_warm = d;
                }
            }
        }
        assert_eq!(
            d_cold, d_warm,
            "{}: warm session result differs from cold",
            b.name
        );
        let ratio = warm.as_secs_f64() / cold.as_secs_f64().max(1e-9);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>10.2}  bitwise-identical",
            b.name,
            cold.as_secs_f64() * 1e3,
            warm.as_secs_f64() * 1e3,
            ratio
        );
        rows.push(WarmRow {
            name: b.name,
            cold,
            warm,
            ratio,
        });
    }

    let mut ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    println!("\nmedian warm / cold first-call latency: {median:.2} (target ≤ 0.50)");
    assert!(
        median <= 0.5,
        "warm sessions must at least halve first-call latency (median {median:.2})"
    );

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"multisession\",\n");
        out.push_str(&format!("  \"scale\": {scale},\n"));
        out.push_str(&format!("  \"best_of\": {best_of},\n"));
        out.push_str(&format!("  \"reps\": {REPS},\n"));
        out.push_str("  \"throughput\": [\n");
        for (k, (n, best, rate)) in throughput.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"sessions\": {}, \"wall_ms\": {}, \"calls_per_sec\": {}}}{}\n",
                n,
                best.as_secs_f64() * 1e3,
                rate,
                if k + 1 < throughput.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"warm_median_ratio\": {median},\n"));
        out.push_str("  \"warm\": [\n");
        for (k, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cold_ms\": {}, \"warm_ms\": {}, \"ratio\": {}, \"identical\": true}}{}\n",
                r.name,
                r.cold.as_secs_f64() * 1e3,
                r.warm.as_secs_f64() * 1e3,
                r.ratio,
                if k + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write json");
        println!("wrote {}", path.display());
    }
}
