//! Figure 4 (SPARC) / Figure 5 (`--platform mips`): speedups of
//! mcc / FALCON / MaJIC-JIT(+codegen time) / MaJIC-speculative over the
//! interpreter, per benchmark, log-scale in the paper.

use majic_bench::{all, harness, Mode};

fn main() {
    let _trace = harness::trace_from_env();
    let cfg = harness::config_from_args();
    println!(
        "Figure 4/5: speedup over the interpreter ({:?}, scale {:.2}, best of {})",
        cfg.platform, cfg.scale, cfg.runs
    );
    println!(
        "{:<10} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "ti (ms)", "mmc", "falcon", "jit+gen", "spec"
    );
    for b in all() {
        let ti = harness::measure(&b, Mode::Interp, &cfg).runtime;
        let mut row = format!("{:<10} {:>9.1}", b.name, ti.as_secs_f64() * 1e3);
        for mode in [Mode::Mcc, Mode::Falcon, Mode::Jit, Mode::Spec] {
            let tc = harness::measure(&b, mode, &cfg).runtime;
            let s = ti.as_secs_f64() / tc.as_secs_f64().max(1e-9);
            row.push(' ');
            row.push_str(&harness::fmt_speedup(s));
        }
        println!("{row}");
    }
}
