//! Measurement methodology (paper §3.2): speedups `s = ti / tc` where
//! `ti` is the interpreter's runtime and `tc` the compiled runtime. "In
//! JIT mode runtime includes the time spent by the JIT compiler
//! producing object code. In speculative mode the repository is assumed
//! to have generated the code ahead of time; hence compile time is not
//! included" (nor for the batch compilers mcc / FALCON). "Execution
//! times were measured on a best-of-10-runs basis"; we default to best
//! of 3.

use crate::programs::Benchmark;
use majic::{ExecMode, Majic, Platform, RegAllocMode, Value};
use std::time::Duration;

/// Measurement modes (the four bars of Figures 4/5 plus the baseline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The interpreter baseline (`ti`).
    Interp,
    /// `mcc` emulation (compile time excluded — batch).
    Mcc,
    /// FALCON emulation (compile time excluded — batch).
    Falcon,
    /// MaJIC JIT (compile time **included**, the "jit+gen" bars).
    Jit,
    /// MaJIC speculative (ahead-of-time; only residual JIT fallbacks
    /// count).
    Spec,
}

impl Mode {
    /// Column label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Interp => "interp",
            Mode::Mcc => "mcc",
            Mode::Falcon => "falcon",
            Mode::Jit => "jit+gen",
            Mode::Spec => "spec",
        }
    }
}

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct MeasureConfig {
    /// Problem-size scale in (0, 1]; 1.0 = the paper's sizes.
    pub scale: f64,
    /// Best-of-N runs (paper: 10).
    pub runs: usize,
    /// Simulated platform for the optimizing backend.
    pub platform: Platform,
    /// Extra engine tweaks (Figure 7 ablations).
    pub infer: majic::InferOptions,
    /// Register allocation mode.
    pub regalloc: RegAllocMode,
    /// Array oversizing.
    pub oversize: bool,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            scale: 0.25,
            runs: 3,
            platform: Platform::Sparc,
            infer: majic::InferOptions::default(),
            regalloc: RegAllocMode::LinearScan,
            oversize: true,
        }
    }
}

impl MeasureConfig {
    /// These measurement knobs as [`majic::EngineOptions`] for `mode`,
    /// via the named-switch builder.
    pub fn engine_options(&self, mode: ExecMode) -> majic::EngineOptions {
        majic::EngineOptions::builder()
            .mode(mode)
            .platform(self.platform)
            .infer(self.infer)
            .regalloc(self.regalloc)
            .oversize(self.oversize)
            .build()
    }
}

/// One measurement result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall-clock runtime charged to the mode (per §3.2 accounting).
    pub runtime: Duration,
    /// Phase breakdown of the *first* (compiling) run.
    pub phases: majic::PhaseTimes,
    /// First output of the benchmark (for cross-mode validation).
    pub result: Option<f64>,
}

fn session(bench: &Benchmark, mode: Mode, cfg: &MeasureConfig) -> Majic {
    let exec = match mode {
        Mode::Interp => ExecMode::Interpret,
        Mode::Mcc => ExecMode::Mcc,
        Mode::Falcon => ExecMode::Falcon,
        Mode::Jit => ExecMode::Jit,
        Mode::Spec => ExecMode::Spec,
    };
    let mut m = Majic::with_options(cfg.engine_options(exec));
    m.load_source(bench.source).expect("benchmark parses");
    m
}

/// Run one benchmark in one mode, returning the §3.2-accounted runtime.
pub fn measure(bench: &Benchmark, mode: Mode, cfg: &MeasureConfig) -> Measurement {
    let args: Vec<Value> = (bench.args)(cfg.scale);
    let mut best: Option<Duration> = None;
    let mut first_phases = None;
    let mut result = None;
    for run in 0..cfg.runs.max(1) {
        // A fresh session per run: the JIT bars must include compile
        // time on *every* measured run ("we started our experiments with
        // an empty repository"), while batch modes exclude it.
        let mut m = session(bench, mode, cfg);
        if mode == Mode::Spec {
            m.speculate_all(); // hidden, ahead-of-time
        }
        if matches!(mode, Mode::Mcc | Mode::Falcon) {
            // Batch compilers build the code before the program runs;
            // warm the repository, then measure execution only.
            let _ = m.call(bench.entry, &args, 1);
            m.reset_times();
        }
        m.reset_times();
        let out = m
            .call(bench.entry, &args, 1)
            .unwrap_or_else(|e| panic!("{} [{mode:?}]: {e}", bench.name));
        let t = match mode {
            // JIT: compile + execute. Spec: execute + any fallback JIT.
            Mode::Jit | Mode::Spec => m.times.total(),
            // Interpreter and batch modes: execution only.
            _ => m.times.execution,
        };
        if best.is_none_or(|b| t < b) {
            best = Some(t);
        }
        if run == 0 {
            first_phases = Some(m.times);
            result = out.first().and_then(|v| v.to_scalar().ok());
        }
    }
    Measurement {
        runtime: best.expect("at least one run"),
        phases: first_phases.expect("at least one run"),
        result,
    }
}

/// Format a speedup the way the paper's log-scale plots read.
pub fn fmt_speedup(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:7.0}")
    } else if s >= 10.0 {
        format!("{s:7.1}")
    } else {
        format!("{s:7.2}")
    }
}

/// RAII guard honoring the `MAJIC_TRACE` environment variable for the
/// duration of a bench binary: tracing is configured on creation
/// ([`majic_trace::init_from_env`]) and the selected exporter runs on
/// drop ([`majic_trace::finish`]). Bind it first thing in `main`:
///
/// ```no_run
/// let _trace = majic_bench::harness::trace_from_env();
/// ```
#[must_use = "the guard exports the trace when dropped"]
pub struct TraceSession(());

/// Start a [`TraceSession`] from the `MAJIC_TRACE` environment variable.
pub fn trace_from_env() -> TraceSession {
    majic_trace::init_from_env();
    TraceSession(())
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        majic_trace::finish();
    }
}

/// Parse `--scale X` / `--platform sparc|mips` / `--runs N` from argv.
pub fn config_from_args() -> MeasureConfig {
    let mut cfg = MeasureConfig::default();
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.scale = v;
                }
            }
            "--runs" => {
                if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                    cfg.runs = v;
                }
            }
            "--platform" => match it.next().map(String::as_str) {
                Some("mips") => cfg.platform = Platform::Mips,
                Some("sparc") => cfg.platform = Platform::Sparc,
                _ => {}
            },
            _ => {}
        }
    }
    cfg
}
