//! The 16 MATLAB benchmarks of Table 1, written from scratch in the
//! MaJIC subset, with the paper's problem sizes (scalable for CI).
//!
//! Categories (paper §3.1):
//! * scalar / Fortran-like: `dirich`, `finedif`, `icn`, `mandel`, `crnich`
//! * builtin-heavy: `cgopt`, `qmr`, `sor`, `mei`
//! * small-vector array codes: `orbec`, `orbrk`, `fractal`, `adapt`
//! * recursive: `fibonacci`, `ackermann`

use majic::Value;

/// One benchmark: source, default arguments, and metadata.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Table-1 name.
    pub name: &'static str,
    /// Short functional description (Table 1).
    pub description: &'static str,
    /// Problem-size label at scale 1.0.
    pub size: &'static str,
    /// MATLAB source (entry function first).
    pub source: &'static str,
    /// Entry function name.
    pub entry: &'static str,
    /// Category (for the analysis text).
    pub category: Category,
    /// Build the argument list at a given scale in (0, 1].
    pub args: fn(f64) -> Vec<Value>,
}

/// Benchmark category per the paper's grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Fortran-77-like scalar code.
    Scalar,
    /// Dominated by built-in library functions.
    Builtin,
    /// Small fixed-size vectors / growing arrays.
    Array,
    /// Recursive functions.
    Recursive,
}

fn s(v: f64) -> Value {
    Value::scalar(v)
}

fn scaled(base: f64, scale: f64, min: f64) -> f64 {
    (base * scale).max(min).round()
}

/// Dirichlet solution to Laplace's equation (Mathews) — Jacobi-style
/// relaxation sweeps with pure scalar indexing. Paper size: 134×134.
pub const DIRICH: &str = "\
function U = dirich(n, maxit)
U = zeros(n, n);
for j = 1:n
  U(1, j) = 100;
  U(n, j) = 50;
end
for i = 1:n
  U(i, 1) = 75;
  U(i, n) = 25;
end
it = 0;
err = 1;
while err > 0.001 & it < maxit
  err = 0;
  for i = 2:n-1
    for j = 2:n-1
      relax = (U(i-1, j) + U(i+1, j) + U(i, j-1) + U(i, j+1)) / 4;
      d = abs(relax - U(i, j));
      if d > err
        err = d;
      end
      U(i, j) = relax;
    end
  end
  it = it + 1;
end
";

/// Finite-difference wave equation (Mathews). Paper size: 1000×1000.
pub const FINEDIF: &str = "\
function U = finedif(n, m)
U = zeros(n, m);
h = 1 / (m - 1);
k = 1 / (n - 1);
r = 2 * k / h;
r2 = r * r / 4;
for j = 2:m-1
  x = (j - 1) * h;
  U(1, j) = sin(pi * x);
  U(2, j) = (1 - r2) * sin(pi * x);
end
for t = 2:n-1
  for j = 2:m-1
    U(t+1, j) = 2 * (1 - r2) * U(t, j) + r2 * U(t, j-1) + r2 * U(t, j+1) - U(t-1, j);
  end
end
";

/// Crank–Nicholson heat-equation solver (Mathews): a Thomas-algorithm
/// tridiagonal solve per time step. Paper size: 321×321.
pub const CRNICH: &str = "\
function U = crnich(n, m)
U = zeros(n, m);
h = 1 / (m - 1);
k = 1 / (n - 1);
r = k / (h * h);
for j = 2:m-1
  x = (j - 1) * h;
  U(1, j) = sin(pi * x) + sin(3 * pi * x);
end
d = zeros(1, m);
c = zeros(1, m);
b = zeros(1, m);
for t = 2:n
  for j = 2:m-1
    b(j) = r * U(t-1, j-1) + (2 - 2*r) * U(t-1, j) + r * U(t-1, j+1);
  end
  d(2) = 2 + 2 * r;
  c(2) = b(2);
  for j = 3:m-1
    mult = -r / d(j-1);
    d(j) = 2 + 2*r + mult * r;
    c(j) = b(j) - mult * c(j-1);
  end
  U(t, m-1) = c(m-1) / d(m-1);
  for j = m-2:-1:2
    U(t, j) = (c(j) + r * U(t, j+1)) / d(j);
  end
end
";

/// Incomplete Cholesky factorization (R. Bramley). Paper size: 400×400.
pub const ICN: &str = "\
function L = icn(n)
A = zeros(n, n);
for i = 1:n
  for j = 1:n
    if i == j
      A(i, j) = 4;
    elseif abs(i - j) == 1
      A(i, j) = -1;
    end
  end
end
L = zeros(n, n);
for k = 1:n
  t = A(k, k);
  for m = 1:k-1
    t = t - L(k, m) * L(k, m);
  end
  L(k, k) = sqrt(t);
  for i = k+1:n
    if A(i, k) ~= 0
      t = A(i, k);
      for m = 1:k-1
        t = t - L(i, m) * L(k, m);
      end
      L(i, k) = t / L(k, k);
    end
  end
end
";

/// Mandelbrot set generator (authors). Paper size: 200×200.
pub const MANDEL: &str = "\
function M = mandel(n, maxit)
M = zeros(n, n);
for r = 1:n
  for c = 1:n
    x0 = -2.1 + 2.6 * (c - 1) / (n - 1);
    y0 = -1.2 + 2.4 * (r - 1) / (n - 1);
    z = 0 + 0*i;
    z0 = x0 + y0*i;
    k = 0;
    while k < maxit & abs(z) < 2
      z = z*z + z0;
      k = k + 1;
    end
    M(r, c) = k;
  end
end
";

/// Conjugate gradient with diagonal preconditioner (Barrett et al.).
/// Dominated by `A*p` matvecs and reductions. Paper size: 420×420.
pub const CGOPT: &str = "\
function x = cgopt(n, iters)
A = zeros(n, n);
for k = 1:n
  A(k, k) = 4;
end
for k = 1:n-1
  A(k, k+1) = -1;
  A(k+1, k) = -1;
end
b = ones(n, 1);
x = zeros(n, 1);
r = b - A*x;
d = 4;
z = r / d;
p = z;
rz = sum(r .* z);
for it = 1:iters
  q = A * p;
  alpha = rz / sum(p .* q);
  x = x + alpha * p;
  r = r - alpha * q;
  z = r / d;
  rznew = sum(r .* z);
  beta = rznew / rz;
  rz = rznew;
  p = z + beta * p;
  if sqrt(rz) < 1e-12
    break
  end
end
";

/// A QMR-flavoured linear solver (Barrett et al. templates): coupled
/// two-term recurrences, heavy in matvecs and norms. Paper: 420×420.
pub const QMR: &str = "\
function x = qmr(n, iters)
A = zeros(n, n);
for k = 1:n
  A(k, k) = 4;
end
for k = 1:n-1
  A(k, k+1) = -1 - 0.1;
  A(k+1, k) = -1 + 0.1;
end
b = ones(n, 1);
x = zeros(n, 1);
r = b - A*x;
v = r;
w = r;
rho = norm(v);
xi = norm(w);
gamma = 1;
eta = -1;
theta = 0;
p = zeros(n, 1);
q = zeros(n, 1);
for it = 1:iters
  if abs(rho) < 1e-13 | abs(xi) < 1e-13
    break
  end
  if ~(abs(rho) < 1e100) | ~(abs(xi) < 1e100) | ~(abs(gamma) > 1e-100)
    break
  end
  v = v / rho;
  w = w / xi;
  delta = sum(w .* v);
  if abs(delta) < 1e-13
    break
  end
  p = v - (xi * delta / gamma) * p;
  q = (A') * w - (rho * delta / gamma) * q;
  pt = A * p;
  epsil = sum(q .* pt);
  beta = epsil / delta;
  if abs(beta) < 1e-13
    break
  end
  v = pt - beta * v;
  rho_old = rho;
  rho = norm(v);
  w = q - beta * w;
  xi = norm(w);
  theta_old = theta;
  theta = rho / (gamma * abs(beta));
  gamma_old = gamma;
  gamma = 1 / sqrt(1 + theta * theta);
  eta = -eta * rho_old * gamma * gamma / (beta * gamma_old * gamma_old);
  if it == 1
    d = eta * p;
  else
    d = eta * p + (theta_old * gamma) * (theta_old * gamma) * d;
  end
  x = x + d;
end
";

/// Successive over-relaxation solver (Barrett et al.), written with
/// whole-matrix triangular solves — builtin-dominated. Paper: 420×420.
pub const SOR: &str = "\
function x = sor(n, iters)
A = zeros(n, n);
for k = 1:n
  A(k, k) = 4;
end
for k = 1:n-1
  A(k, k+1) = -1;
  A(k+1, k) = -1;
end
b = ones(n, 1);
w = 1.5;
M = zeros(n, n);
N = zeros(n, n);
for k = 1:n
  M(k, k) = A(k, k) / w;
  N(k, k) = A(k, k) * (1 - w) / w;
end
for r = 2:n
  for c = 1:r-1
    M(r, c) = A(r, c);
  end
end
for r = 1:n-1
  for c = r+1:n
    N(r, c) = -A(r, c);
  end
end
x = zeros(n, 1);
for it = 1:iters
  x = M \\ (N*x + b);
end
";

/// Galerkin finite-element method (Garcia): assemble a small stiffness
/// system with loops, solve with `\\`. Paper size: 40×40.
pub const GALRKN: &str = "\
function u = galrkn(n)
K = zeros(n, n);
f = zeros(n, 1);
h = 1 / (n + 1);
for e = 1:n-1
  K(e, e) = K(e, e) + 2 / h;
  K(e+1, e+1) = K(e+1, e+1) + 2 / h;
  K(e, e+1) = K(e, e+1) - 1 / h;
  K(e+1, e) = K(e+1, e) - 1 / h;
end
K(n, n) = K(n, n) + 2 / h;
for k = 1:n
  xk = k * h;
  f(k) = h * sin(pi * xk);
end
u = K \\ f;
";

/// Fractal landscape generator using `eig` (origin unknown in the
/// paper). Spectral synthesis: eigenvalues of a correlation matrix scale
/// a random field. Paper size: 31×14.
pub const MEI: &str = "\
function H = mei(n, m, passes)
C = zeros(n, n);
for a = 1:n
  for b2 = 1:n
    C(a, b2) = exp(-abs(a - b2) / 5);
  end
end
H = zeros(n, m);
for p = 1:passes
  e = eig(C);
  s = sum(abs(e)) / n;
  for a = 1:n
    for b2 = 1:m
      H(a, b2) = H(a, b2) + s * (rand - 0.5) / p;
    end
  end
  for a = 1:n
    C(a, a) = C(a, a) + 0.01;
  end
end
";

/// Euler–Cromer method for the 1-body problem (Garcia): operations on
/// 2-vectors. Paper size: 62400 steps.
pub const ORBEC: &str = "\
function e = orbec(nstep)
r = [1 0];
v = [0 6.2831853];
gm = 39.478418;
dt = 0.0001;
for k = 1:nstep
  d = sqrt(r(1)*r(1) + r(2)*r(2));
  acc = -gm / (d * d * d);
  v = v + dt * acc * r;
  r = r + dt * v;
end
e = 0.5 * (v(1)*v(1) + v(2)*v(2)) - gm / sqrt(r(1)*r(1) + r(2)*r(2));
";

/// Runge–Kutta method for the 1-body problem (Garcia): small-vector
/// arithmetic plus a helper function the inliner removes. Paper: 5000
/// steps.
pub const ORBRK: &str = "\
function e = orbrk(nstep)
r = [1 0];
v = [0 6.2831853];
gm = 39.478418;
dt = 0.0005;
for k = 1:nstep
  k1r = dt * v;
  k1v = dt * accel(r, gm);
  k2r = dt * (v + 0.5 * k1v);
  k2v = dt * accel(r + 0.5 * k1r, gm);
  k3r = dt * (v + 0.5 * k2v);
  k3v = dt * accel(r + 0.5 * k2r, gm);
  k4r = dt * (v + k3v);
  k4v = dt * accel(r + k3r, gm);
  r = r + (k1r + 2*k2r + 2*k3r + k4r) / 6;
  v = v + (k1v + 2*k2v + 2*k3v + k4v) / 6;
end
e = 0.5 * (v(1)*v(1) + v(2)*v(2)) - gm / sqrt(r(1)*r(1) + r(2)*r(2));
function a = accel(r, gm)
d = sqrt(r(1)*r(1) + r(2)*r(2));
s = -gm / (d * d * d);
a = s * r;
";

/// Barnsley fern generator (authors): chaotic iteration with `rand`,
/// trajectory stored in dynamically growing arrays. Paper: 25000 points.
pub const FRACTAL: &str = "\
function s = fractal(npts)
x = 0;
y = 0;
s = 0;
for k = 1:npts
  t = rand;
  if t < 0.01
    xn = 0;
    yn = 0.16 * y;
  elseif t < 0.86
    xn = 0.85*x + 0.04*y;
    yn = -0.04*x + 0.85*y + 1.6;
  elseif t < 0.93
    xn = 0.2*x - 0.26*y;
    yn = 0.23*x + 0.22*y + 1.6;
  else
    xn = -0.15*x + 0.28*y;
    yn = 0.26*x + 0.24*y + 0.44;
  end
  x = xn;
  y = yn;
  xs(k) = x;
  ys(k) = y;
end
for k = 1:npts
  s = s + abs(xs(k)) + abs(ys(k));
end
s = s / npts;
";

/// Adaptive quadrature by interval bisection (Mathews): Simpson's rule
/// on a worklist kept in dynamically growing arrays (the oversizing
/// showcase). Paper: ~2500 approximations.
pub const ADAPT: &str = "\
function q = adapt(nseg, tol)
a0 = 0;
b0 = 3.141592653589793;
q = 0;
lo(1) = a0;
hi(1) = b0;
top = 1;
count = 0;
while top > 0 & count < nseg
  a = lo(top);
  b = hi(top);
  top = top - 1;
  count = count + 1;
  m = (a + b) / 2;
  h = b - a;
  s1 = h * (sin(a) + 4*sin(m) + sin(b)) / 6;
  m1 = (a + m) / 2;
  m2 = (m + b) / 2;
  s2 = h * (sin(a) + 4*sin(m1) + 2*sin(m) + 4*sin(m2) + sin(b)) / 12;
  if abs(s2 - s1) < tol * h
    q = q + s2;
  else
    top = top + 1;
    lo(top) = a;
    hi(top) = m;
    top = top + 1;
    lo(top) = m;
    hi(top) = b;
  end
end
";

/// Recursive Fibonacci (authors). Paper: fibonacci(20).
pub const FIBONACCI: &str = "\
function f = fibonacci(n)
if n < 2
  f = n;
  return
end
f = fibonacci(n - 1) + fibonacci(n - 2);
";

/// Ackermann's function (authors). Paper: ackermann(3, 5).
pub const ACKERMANN: &str = "\
function a = ackermann(m, n)
if m == 0
  a = n + 1;
  return
end
if n == 0
  a = ackermann(m - 1, 1);
  return
end
a = ackermann(m - 1, ackermann(m, n - 1));
";

/// The full Table-1 suite.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "adapt",
            description: "adaptive quadrature",
            size: "approx. 2500",
            source: ADAPT,
            entry: "adapt",
            category: Category::Array,
            args: |sc| vec![s(scaled(2500.0, sc, 40.0)), s(1e-10)],
        },
        Benchmark {
            name: "cgopt",
            description: "conjugate gradient w. diagonal preconditioner",
            size: "420 x 420",
            source: CGOPT,
            entry: "cgopt",
            category: Category::Builtin,
            args: |sc| vec![s(scaled(420.0, sc, 24.0)), s(scaled(60.0, sc.sqrt(), 8.0))],
        },
        Benchmark {
            name: "crnich",
            description: "Crank-Nicholson heat equation solver",
            size: "321 x 321",
            source: CRNICH,
            entry: "crnich",
            category: Category::Scalar,
            args: |sc| vec![s(scaled(321.0, sc, 12.0)), s(scaled(321.0, sc, 12.0))],
        },
        Benchmark {
            name: "dirich",
            description: "Dirichlet solution to Laplace's equation",
            size: "134 x 134",
            source: DIRICH,
            entry: "dirich",
            category: Category::Scalar,
            args: |sc| vec![s(scaled(134.0, sc, 10.0)), s(scaled(60.0, sc, 4.0))],
        },
        Benchmark {
            name: "finedif",
            description: "finite difference solution to the wave equation",
            size: "1000 x 1000",
            source: FINEDIF,
            entry: "finedif",
            category: Category::Scalar,
            args: |sc| vec![s(scaled(1000.0, sc, 16.0)), s(scaled(1000.0, sc, 16.0))],
        },
        Benchmark {
            name: "galrkn",
            description: "Galerkin's method (finite element method)",
            size: "40 x 40",
            source: GALRKN,
            entry: "galrkn",
            category: Category::Builtin,
            args: |sc| vec![s(scaled(40.0, sc, 8.0))],
        },
        Benchmark {
            name: "icn",
            description: "incomplete Cholesky factorization",
            size: "400 x 400",
            source: ICN,
            entry: "icn",
            category: Category::Scalar,
            args: |sc| vec![s(scaled(400.0, sc, 16.0))],
        },
        Benchmark {
            name: "mei",
            description: "fractal landscape generator",
            size: "31 x 14",
            source: MEI,
            entry: "mei",
            category: Category::Builtin,
            args: |sc| {
                vec![
                    s(scaled(31.0, sc.max(0.5), 8.0)),
                    s(scaled(14.0, sc.max(0.5), 4.0)),
                    s(scaled(40.0, sc, 3.0)),
                ]
            },
        },
        Benchmark {
            name: "orbec",
            description: "Euler-Cromer method for 1-body problem",
            size: "62400 points",
            source: ORBEC,
            entry: "orbec",
            category: Category::Array,
            args: |sc| vec![s(scaled(62_400.0, sc, 300.0))],
        },
        Benchmark {
            name: "orbrk",
            description: "Runge-Kutta method for 1-body problem",
            size: "5000 points",
            source: ORBRK,
            entry: "orbrk",
            category: Category::Array,
            args: |sc| vec![s(scaled(5000.0, sc, 60.0))],
        },
        Benchmark {
            name: "qmr",
            description: "linear equation system solver, QMR method",
            size: "420 x 420",
            source: QMR,
            entry: "qmr",
            category: Category::Builtin,
            args: |sc| vec![s(scaled(420.0, sc, 24.0)), s(scaled(40.0, sc.sqrt(), 6.0))],
        },
        Benchmark {
            name: "sor",
            description: "lin. eq. sys. solver, successive overrelaxation",
            size: "420 x 420",
            source: SOR,
            entry: "sor",
            category: Category::Builtin,
            args: |sc| vec![s(scaled(420.0, sc, 16.0)), s(scaled(12.0, sc.sqrt(), 3.0))],
        },
        Benchmark {
            name: "ackermann",
            description: "Ackermann's function",
            size: "ackermann(3,5)",
            source: ACKERMANN,
            entry: "ackermann",
            category: Category::Recursive,
            args: |sc| {
                let n = if sc >= 0.9 {
                    5.0
                } else if sc >= 0.3 {
                    4.0
                } else {
                    3.0
                };
                vec![s(3.0), s(n)]
            },
        },
        Benchmark {
            name: "fractal",
            description: "Barnsley fern generator",
            size: "25000 points",
            source: FRACTAL,
            entry: "fractal",
            category: Category::Array,
            args: |sc| vec![s(scaled(25_000.0, sc, 200.0))],
        },
        Benchmark {
            name: "mandel",
            description: "Mandelbrot set generator",
            size: "200 x 200",
            source: MANDEL,
            entry: "mandel",
            category: Category::Scalar,
            args: |sc| vec![s(scaled(200.0, sc, 10.0)), s(40.0)],
        },
        Benchmark {
            name: "fibonacci",
            description: "recursive Fibonacci function",
            size: "fibonacci(20)",
            source: FIBONACCI,
            entry: "fibonacci",
            category: Category::Recursive,
            args: |sc| vec![s(scaled(20.0, sc.max(0.5), 10.0))],
        },
    ]
}

/// Look a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// Source line count (the paper's "lines of code" column).
pub fn line_count(b: &Benchmark) -> usize {
    b.source.lines().filter(|l| !l.trim().is_empty()).count()
}
