//! Benchmark suite and measurement harness reproducing the paper's
//! evaluation (Tables 1–2, Figures 4–7).
//!
//! Run the reproduction binaries with, e.g.:
//!
//! ```text
//! cargo run --release -p majic-bench --bin table1 -- --scale 0.25
//! cargo run --release -p majic-bench --bin figure4
//! cargo run --release -p majic-bench --bin figure5
//! cargo run --release -p majic-bench --bin figure6
//! cargo run --release -p majic-bench --bin figure7
//! cargo run --release -p majic-bench --bin table2
//! cargo run --release -p majic-bench --bin handopt
//! ```
//!
//! `--scale` shrinks problem sizes (default 0.25; 1.0 = the paper's
//! sizes). Speedups are ratios, so the reported *shape* is stable under
//! scaling.

pub mod harness;
pub mod programs;

pub use harness::{measure, MeasureConfig, Measurement, Mode};
pub use programs::{all, by_name, line_count, Benchmark, Category};
