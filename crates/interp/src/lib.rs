//! The MaJIC front-end interpreter — "a compatible interpreter that can
//! execute MATLAB code at approximately MATLAB's original speed"
//! (paper §2).
//!
//! This tree-walking interpreter is intentionally faithful to what makes
//! interpreted MATLAB slow: every variable access is a dynamic
//! symbol-table lookup, every operation dispatches on runtime value
//! kinds through the generic [`majic_runtime::ops`] library, and every
//! array access is subscript-checked. It serves as the measurement
//! baseline `ti` of the paper's speedup figures and as the semantic
//! reference the compiled modes are tested against.
//!
//! # Examples
//!
//! ```
//! use majic_interp::Interp;
//!
//! let mut interp = Interp::new();
//! interp.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
//! interp.eval("a = sq(7);").unwrap();
//! assert_eq!(interp.var("a").unwrap().to_scalar().unwrap(), 49.0);
//! ```

mod interp;

pub use interp::{Flow, Interp};
