//! The tree-walking interpreter.

use majic_ast::{
    parse_source, parse_statements, BinOp, Expr, ExprKind, Function, LValue, Stmt, StmtKind, UnOp,
};
use majic_runtime::builtins::{Builtin, CallCtx};
use majic_runtime::ops::{self, Cmp, Subscript};
use majic_runtime::{Complex, RuntimeError, RuntimeResult, Value};
use std::collections::{HashMap, HashSet};

/// Control-flow outcome of executing a statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// `break` out of the innermost loop.
    Break,
    /// `continue` the innermost loop.
    Continue,
    /// `return` from the current function.
    Return,
}

/// One call frame: the dynamic symbol table of a function activation.
#[derive(Debug, Default)]
struct Frame {
    vars: HashMap<String, Value>,
    global_decls: HashSet<String>,
}

/// The interpreter session: user functions, global workspace, and the
/// base (command-window) frame.
#[derive(Debug)]
pub struct Interp {
    functions: HashMap<String, Function>,
    globals: HashMap<String, Value>,
    /// Builtin-call context (random generator, captured output).
    pub ctx: CallCtx,
    base: Frame,
    /// Recursion guard.
    depth: usize,
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}

impl Interp {
    /// A fresh session with an empty workspace.
    pub fn new() -> Interp {
        Interp {
            functions: HashMap::new(),
            globals: HashMap::new(),
            ctx: CallCtx::new(),
            base: Frame::default(),
            depth: 0,
        }
    }

    /// Parse a source file and register its functions; script statements
    /// (if any) execute immediately in the base workspace.
    ///
    /// # Errors
    ///
    /// Returns parse errors as [`RuntimeError::Raised`] and propagates
    /// execution errors from the script part.
    pub fn load_source(&mut self, src: &str) -> RuntimeResult<()> {
        let file =
            parse_source(src).map_err(|e| RuntimeError::Raised(format!("parse error: {e}")))?;
        for f in file.functions {
            self.functions.insert(f.name.clone(), f);
        }
        if !file.script.is_empty() {
            let mut base = std::mem::take(&mut self.base);
            let r = self.exec_block(&file.script, &mut base);
            self.base = base;
            r?;
        }
        Ok(())
    }

    /// Register a single already-parsed function.
    pub fn define_function(&mut self, f: Function) {
        self.functions.insert(f.name.clone(), f);
    }

    /// Names of all registered user functions.
    pub fn function_names(&self) -> impl Iterator<Item = &str> {
        self.functions.keys().map(String::as_str)
    }

    /// Look up a registered function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Evaluate command-window input in the base workspace.
    ///
    /// # Errors
    ///
    /// Returns parse or execution errors.
    pub fn eval(&mut self, src: &str) -> RuntimeResult<()> {
        let (stmts, _) =
            parse_statements(src).map_err(|e| RuntimeError::Raised(format!("parse error: {e}")))?;
        let mut base = std::mem::take(&mut self.base);
        let r = self.exec_block(&stmts, &mut base);
        self.base = base;
        r.map(|_| ())
    }

    /// Execute already-parsed statements in the base workspace.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn exec_statements(&mut self, stmts: &[Stmt]) -> RuntimeResult<()> {
        let mut base = std::mem::take(&mut self.base);
        let r = self.exec_block(stmts, &mut base);
        self.base = base;
        r.map(|_| ())
    }

    /// Evaluate a single expression in the base workspace.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn eval_value(&mut self, e: &Expr) -> RuntimeResult<Value> {
        let mut base = std::mem::take(&mut self.base);
        let r = self.eval_expr(e, &mut base);
        self.base = base;
        r
    }

    /// A variable from the base workspace.
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.base.vars.get(name).or_else(|| self.globals.get(name))
    }

    /// Set a variable in the base workspace.
    pub fn set_var(&mut self, name: &str, value: Value) {
        self.base.vars.insert(name.to_owned(), value);
    }

    /// Call a user function by name with the given arguments, returning
    /// `nargout` outputs (missing outputs error, as in MATLAB).
    ///
    /// # Errors
    ///
    /// Propagates any runtime error from the callee.
    pub fn call_function(
        &mut self,
        name: &str,
        args: &[Value],
        nargout: usize,
    ) -> RuntimeResult<Vec<Value>> {
        let _sp = majic_trace::Span::enter_with("interp.call", || vec![("fn", name.to_owned())]);
        let f = self
            .functions
            .get(name)
            .cloned()
            .ok_or_else(|| RuntimeError::Undefined(name.to_owned()))?;
        self.invoke(&f, args, nargout)
    }

    fn invoke(
        &mut self,
        f: &Function,
        args: &[Value],
        nargout: usize,
    ) -> RuntimeResult<Vec<Value>> {
        if args.len() > f.params.len() {
            return Err(RuntimeError::BadArity {
                name: f.name.clone(),
                detail: format!("{} inputs, function takes {}", args.len(), f.params.len()),
            });
        }
        self.depth += 1;
        if self.depth > 10_000 {
            self.depth -= 1;
            return Err(RuntimeError::Raised("recursion limit exceeded".to_owned()));
        }
        let mut frame = Frame::default();
        for (p, a) in f.params.iter().zip(args) {
            // Call-by-value: the clone is cheap (copy-on-write buffers).
            frame.vars.insert(p.clone(), a.clone());
        }
        let result = self.exec_block(&f.body, &mut frame);
        self.depth -= 1;
        result?;
        let mut outs = Vec::with_capacity(nargout);
        for (k, o) in f.outputs.iter().enumerate() {
            if k >= nargout.max(1) {
                break;
            }
            match frame.vars.get(o) {
                Some(v) => outs.push(v.clone()),
                None => {
                    if k < nargout {
                        return Err(RuntimeError::Raised(format!(
                            "output argument '{o}' of '{}' not assigned",
                            f.name
                        )));
                    }
                }
            }
        }
        if outs.len() < nargout {
            return Err(RuntimeError::BadArity {
                name: f.name.clone(),
                detail: format!("{nargout} outputs requested"),
            });
        }
        Ok(outs)
    }

    fn exec_block(&mut self, stmts: &[Stmt], frame: &mut Frame) -> RuntimeResult<Flow> {
        for s in stmts {
            match self.exec_stmt(s, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn display_assignment(&mut self, name: &str, frame: &Frame) {
        if let Some(v) = frame.vars.get(name) {
            self.ctx.printed.push_str(&format!("{name} = {v}\n"));
        }
    }

    fn exec_stmt(&mut self, s: &Stmt, frame: &mut Frame) -> RuntimeResult<Flow> {
        match &s.kind {
            StmtKind::Expr { expr, suppressed } => {
                // A bare call with zero outputs (e.g. `disp(x)`) must not
                // set `ans`.
                let produced = self.eval_maybe_void(expr, frame)?;
                if let Some(v) = produced {
                    frame.vars.insert("ans".to_owned(), v);
                    if !*suppressed {
                        self.display_assignment("ans", frame);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Assign {
                lhs,
                rhs,
                suppressed,
            } => {
                let v = self.eval_expr(rhs, frame)?;
                self.assign(lhs, v, frame)?;
                if !*suppressed {
                    self.display_assignment(lhs.name(), frame);
                }
                Ok(Flow::Normal)
            }
            StmtKind::MultiAssign {
                lhs,
                callee,
                args,
                suppressed,
                ..
            } => {
                let argv = self.eval_args(args, frame, None)?;
                let argv = self.subscripts_to_values(argv)?;
                let outs = self.dispatch_call(callee, &argv, lhs.len(), frame)?;
                if outs.len() < lhs.len() {
                    return Err(RuntimeError::BadArity {
                        name: callee.clone(),
                        detail: format!("{} outputs requested", lhs.len()),
                    });
                }
                for (lv, v) in lhs.iter().zip(outs) {
                    self.assign(lv, v, frame)?;
                    if !*suppressed {
                        self.display_assignment(lv.name(), frame);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (cond, body) in branches {
                    if self.eval_expr(cond, frame)?.is_true() {
                        return self.exec_block(body, frame);
                    }
                }
                if let Some(body) = else_body {
                    return self.exec_block(body, frame);
                }
                Ok(Flow::Normal)
            }
            StmtKind::While { cond, body } => {
                while self.eval_expr(cond, frame)?.is_true() {
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                var, iter, body, ..
            } => {
                let space = self.eval_expr(iter, frame)?;
                // MATLAB iterates over the columns of the iteration space.
                let (rows, cols) = space.dims();
                for c in 0..cols {
                    let item = if rows == 1 {
                        ops::index_get(&space, &[Subscript::Index(Value::scalar((c + 1) as f64))])?
                    } else {
                        ops::index_get(
                            &space,
                            &[
                                Subscript::Colon,
                                Subscript::Index(Value::scalar((c + 1) as f64)),
                            ],
                        )?
                    };
                    frame.vars.insert(var.clone(), item);
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Return => Ok(Flow::Return),
            StmtKind::Global(names) => {
                for n in names {
                    frame.global_decls.insert(n.clone());
                    self.globals.entry(n.clone()).or_insert_with(Value::empty);
                }
                Ok(Flow::Normal)
            }
            StmtKind::Clear(names) => {
                if names.is_empty() {
                    frame.vars.clear();
                } else {
                    for n in names {
                        frame.vars.remove(n);
                        frame.global_decls.remove(n);
                    }
                }
                Ok(Flow::Normal)
            }
        }
    }

    fn assign(&mut self, lhs: &LValue, v: Value, frame: &mut Frame) -> RuntimeResult<()> {
        match lhs {
            LValue::Var { name, .. } => {
                if frame.global_decls.contains(name) {
                    self.globals.insert(name.clone(), v);
                } else {
                    frame.vars.insert(name.clone(), v);
                }
                Ok(())
            }
            LValue::Index { name, args, .. } => {
                let is_global = frame.global_decls.contains(name);
                // Evaluate subscripts against a cheap handle first (for
                // `end` and self-referential subscripts)…
                let handle = if is_global {
                    self.globals.get(name).cloned()
                } else {
                    frame.vars.get(name).cloned()
                }
                .unwrap_or_else(Value::empty);
                let subs = self.eval_index_args(args, &handle, frame)?;
                drop(handle);
                // …then take the array out of the workspace so the store
                // mutates the buffer in place; leaving a live clone would
                // copy-on-write the whole array on every element store
                // (real MATLAB updates in place too).
                let mut base = if is_global {
                    self.globals.remove(name)
                } else {
                    frame.vars.remove(name)
                }
                .unwrap_or_else(Value::empty);
                // The stock interpreter resizes without oversizing — the
                // headroom trick is a MaJIC codegen optimization.
                ops::index_set(&mut base, &subs, &v, false)?;
                if is_global {
                    self.globals.insert(name.clone(), base);
                } else {
                    frame.vars.insert(name.clone(), base);
                }
                Ok(())
            }
        }
    }

    /// Evaluate call/index arguments. `end_base` supplies the value being
    /// indexed when the args are subscripts (enables `end` and `:`).
    fn eval_args(
        &mut self,
        args: &[Expr],
        frame: &mut Frame,
        end_base: Option<&Value>,
    ) -> RuntimeResult<Vec<Subscript>> {
        let n = args.len();
        let mut out = Vec::with_capacity(n);
        for (k, a) in args.iter().enumerate() {
            match &a.kind {
                ExprKind::Colon => out.push(Subscript::Colon),
                _ => {
                    let end_val = end_base.map(|b| end_extent(b, k, n));
                    let v = self.eval_with_end(a, frame, end_val)?;
                    out.push(Subscript::Index(v));
                }
            }
        }
        Ok(out)
    }

    fn eval_index_args(
        &mut self,
        args: &[Expr],
        base: &Value,
        frame: &mut Frame,
    ) -> RuntimeResult<Vec<Subscript>> {
        self.eval_args(args, frame, Some(base))
    }

    fn subscripts_to_values(&self, subs: Vec<Subscript>) -> RuntimeResult<Vec<Value>> {
        subs.into_iter()
            .map(|s| match s {
                Subscript::Index(v) => Ok(v),
                Subscript::Colon => Err(RuntimeError::Raised(
                    "':' is only valid as a subscript".to_owned(),
                )),
            })
            .collect()
    }

    /// Evaluate an expression that may legally produce no value (a call
    /// to a zero-output function in statement position).
    fn eval_maybe_void(&mut self, e: &Expr, frame: &mut Frame) -> RuntimeResult<Option<Value>> {
        if let ExprKind::Apply { callee, args } = &e.kind {
            if !frame.vars.contains_key(callee) && !frame.global_decls.contains(callee) {
                let argv = self.eval_args(args, frame, None)?;
                let argv = self.subscripts_to_values(argv)?;
                let mut outs = self.dispatch_call(callee, &argv, 0, frame)?;
                return Ok(if outs.is_empty() {
                    None
                } else {
                    Some(outs.remove(0))
                });
            }
        }
        self.eval_expr(e, frame).map(Some)
    }

    /// Evaluate an expression.
    fn eval_expr(&mut self, e: &Expr, frame: &mut Frame) -> RuntimeResult<Value> {
        self.eval_with_end(e, frame, None)
    }

    fn eval_with_end(
        &mut self,
        e: &Expr,
        frame: &mut Frame,
        end_val: Option<f64>,
    ) -> RuntimeResult<Value> {
        match &e.kind {
            ExprKind::Number { value, imaginary } => Ok(if *imaginary {
                Value::complex_scalar(Complex::new(0.0, *value))
            } else {
                Value::scalar(*value)
            }),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Ident(name) => self.resolve_ident(name, frame),
            ExprKind::End => end_val.map(Value::scalar).ok_or_else(|| {
                RuntimeError::Raised("'end' is only valid inside a subscript".to_owned())
            }),
            ExprKind::Colon => Err(RuntimeError::Raised(
                "':' is only valid as a subscript".to_owned(),
            )),
            ExprKind::Apply { callee, args } => {
                // Dynamic disambiguation, exactly like the MATLAB
                // interpreter: variable first, then builtin, then user
                // function.
                let base = if frame.global_decls.contains(callee) {
                    self.globals.get(callee).cloned()
                } else {
                    frame.vars.get(callee).cloned()
                };
                if let Some(base) = base {
                    let subs = self.eval_index_args(args, &base, frame)?;
                    return ops::index_get(&base, &subs);
                }
                let argv = self.eval_args(args, frame, None)?;
                let argv = self.subscripts_to_values(argv)?;
                let mut outs = self.dispatch_call(callee, &argv, 1, frame)?;
                if outs.is_empty() {
                    return Err(RuntimeError::Raised(format!(
                        "function '{callee}' returned no value"
                    )));
                }
                Ok(outs.remove(0))
            }
            ExprKind::Range { start, step, stop } => {
                let sv = self.eval_with_end(start, frame, end_val)?;
                let ev = self.eval_with_end(stop, frame, end_val)?;
                let stepv = match step {
                    Some(s) => Some(self.eval_with_end(s, frame, end_val)?),
                    None => None,
                };
                ops::range(&sv, stepv.as_ref(), &ev)
            }
            ExprKind::Unary { op, operand } => {
                let v = self.eval_with_end(operand, frame, end_val)?;
                match op {
                    UnOp::Neg => ops::neg(&v),
                    UnOp::Plus => Ok(v),
                    UnOp::Not => ops::not(&v),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit forms evaluate lazily.
                if matches!(op, BinOp::ShortAnd | BinOp::ShortOr) {
                    let l = self.eval_with_end(lhs, frame, end_val)?;
                    let lt = l.is_true();
                    return match op {
                        BinOp::ShortAnd if !lt => Ok(Value::bool_scalar(false)),
                        BinOp::ShortOr if lt => Ok(Value::bool_scalar(true)),
                        _ => {
                            let r = self.eval_with_end(rhs, frame, end_val)?;
                            Ok(Value::bool_scalar(r.is_true()))
                        }
                    };
                }
                let l = self.eval_with_end(lhs, frame, end_val)?;
                let r = self.eval_with_end(rhs, frame, end_val)?;
                apply_binop(*op, &l, &r)
            }
            ExprKind::Matrix(rows) => {
                let mut vals = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut rvals = Vec::with_capacity(row.len());
                    for el in row {
                        rvals.push(self.eval_with_end(el, frame, end_val)?);
                    }
                    vals.push(rvals);
                }
                ops::build_matrix(&vals)
            }
            ExprKind::Transpose { operand, conjugate } => {
                let v = self.eval_with_end(operand, frame, end_val)?;
                ops::transpose(&v, *conjugate)
            }
        }
    }

    fn resolve_ident(&mut self, name: &str, frame: &mut Frame) -> RuntimeResult<Value> {
        if frame.global_decls.contains(name) {
            if let Some(v) = self.globals.get(name) {
                return Ok(v.clone());
            }
        }
        if let Some(v) = frame.vars.get(name) {
            return Ok(v.clone());
        }
        if let Some(b) = Builtin::lookup(name) {
            let mut outs = b.call(&mut self.ctx, &[], 1)?;
            if outs.is_empty() {
                return Err(RuntimeError::Undefined(name.to_owned()));
            }
            return Ok(outs.remove(0));
        }
        if let Some(f) = self.functions.get(name).cloned() {
            let mut outs = self.invoke(&f, &[], 1)?;
            if outs.is_empty() {
                return Err(RuntimeError::Undefined(name.to_owned()));
            }
            return Ok(outs.remove(0));
        }
        Err(RuntimeError::Undefined(name.to_owned()))
    }

    fn dispatch_call(
        &mut self,
        callee: &str,
        args: &[Value],
        nargout: usize,
        _frame: &mut Frame,
    ) -> RuntimeResult<Vec<Value>> {
        if let Some(b) = Builtin::lookup(callee) {
            return b.call(&mut self.ctx, args, nargout);
        }
        if let Some(f) = self.functions.get(callee).cloned() {
            return self.invoke(&f, args, nargout);
        }
        Err(RuntimeError::Undefined(callee.to_owned()))
    }
}

/// Extent seen by `end` for subscript `k` of `n` on `base`.
fn end_extent(base: &Value, k: usize, n: usize) -> f64 {
    let (r, c) = base.dims();
    if n == 1 {
        (r * c) as f64
    } else if k == 0 {
        r as f64
    } else {
        c as f64
    }
}

fn apply_binop(op: BinOp, l: &Value, r: &Value) -> RuntimeResult<Value> {
    match op {
        BinOp::Add => ops::add(l, r),
        BinOp::Sub => ops::sub(l, r),
        BinOp::Mul => ops::mul(l, r),
        BinOp::Div => ops::div(l, r),
        BinOp::LeftDiv => ops::left_div(l, r),
        BinOp::Pow => ops::pow(l, r),
        BinOp::ElemMul => ops::elem_mul(l, r),
        BinOp::ElemDiv => ops::elem_div(l, r),
        BinOp::ElemLeftDiv => ops::elem_left_div(l, r),
        BinOp::ElemPow => ops::elem_pow(l, r),
        BinOp::Lt => ops::compare(Cmp::Lt, l, r),
        BinOp::Le => ops::compare(Cmp::Le, l, r),
        BinOp::Gt => ops::compare(Cmp::Gt, l, r),
        BinOp::Ge => ops::compare(Cmp::Ge, l, r),
        BinOp::Eq => ops::compare(Cmp::Eq, l, r),
        BinOp::Ne => ops::compare(Cmp::Ne, l, r),
        BinOp::And => ops::logical(l, r, false),
        BinOp::Or => ops::logical(l, r, true),
        BinOp::ShortAnd | BinOp::ShortOr => unreachable!("handled lazily"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Interp {
        let mut i = Interp::new();
        i.eval(src).unwrap();
        i
    }

    fn scalar(i: &Interp, name: &str) -> f64 {
        i.var(name).unwrap().to_scalar().unwrap()
    }

    #[test]
    fn arithmetic_and_variables() {
        let i = run("x = 2 + 3 * 4;\ny = x ^ 2;");
        assert_eq!(scalar(&i, "x"), 14.0);
        assert_eq!(scalar(&i, "y"), 196.0);
    }

    #[test]
    fn control_flow() {
        let i = run("s = 0;\nfor k = 1:10\n if mod(k, 2) == 0\n  s = s + k;\n end\nend");
        assert_eq!(scalar(&i, "s"), 30.0);
        let i = run("n = 0;\nwhile n < 5\n n = n + 1;\nend");
        assert_eq!(scalar(&i, "n"), 5.0);
    }

    #[test]
    fn break_and_continue() {
        let i = run("s = 0;\nfor k = 1:10\n if k == 3\n  continue\n end\n if k > 5\n  break\n end\n s = s + k;\nend");
        assert_eq!(scalar(&i, "s"), 1.0 + 2.0 + 4.0 + 5.0);
    }

    #[test]
    fn matrices_and_indexing() {
        let i = run("A = [1 2; 3 4];\nb = A(2, 1);\nA(1, 2) = 9;\nc = A(1, 2);\nd = A(end, end);");
        assert_eq!(scalar(&i, "b"), 3.0);
        assert_eq!(scalar(&i, "c"), 9.0);
        assert_eq!(scalar(&i, "d"), 4.0);
    }

    #[test]
    fn array_growth_on_assignment() {
        let i = run("v = [1 2];\nv(5) = 7;\nn = length(v);");
        assert_eq!(scalar(&i, "n"), 5.0);
        let i = run("clear\nB(3, 3) = 1;\n[r, c] = size(B);");
        assert_eq!(scalar(&i, "r"), 3.0);
        assert_eq!(scalar(&i, "c"), 3.0);
    }

    #[test]
    fn colon_and_ranges() {
        let i = run("v = 1:5;\ns = sum(v);\nw = v(2:4);\nt = sum(w);\nu = v(:);");
        assert_eq!(scalar(&i, "s"), 15.0);
        assert_eq!(scalar(&i, "t"), 9.0);
        assert_eq!(i.var("u").unwrap().dims(), (5, 1));
    }

    #[test]
    fn function_calls() {
        let mut i = Interp::new();
        i.load_source("function y = sq(x)\ny = x * x;\n").unwrap();
        i.eval("a = sq(6);").unwrap();
        assert_eq!(scalar(&i, "a"), 36.0);
    }

    #[test]
    fn recursion() {
        let mut i = Interp::new();
        i.load_source(
            "function f = fib(n)\nif n < 2\n f = n;\n return\nend\nf = fib(n-1) + fib(n-2);\n",
        )
        .unwrap();
        i.eval("a = fib(10);").unwrap();
        assert_eq!(scalar(&i, "a"), 55.0);
    }

    #[test]
    fn multiple_outputs() {
        let mut i = Interp::new();
        i.load_source("function [s, p] = sp(a, b)\ns = a + b;\np = a * b;\n")
            .unwrap();
        i.eval("[x, y] = sp(3, 4);").unwrap();
        assert_eq!(scalar(&i, "x"), 7.0);
        assert_eq!(scalar(&i, "y"), 12.0);
    }

    #[test]
    fn call_by_value_semantics() {
        let mut i = Interp::new();
        i.load_source("function y = clobber(v)\nv(1) = 999;\ny = v(1);\n")
            .unwrap();
        i.eval("a = [1 2 3];\nb = clobber(a);\nfirst = a(1);")
            .unwrap();
        assert_eq!(scalar(&i, "first"), 1.0, "caller's array must not change");
        assert_eq!(scalar(&i, "b"), 999.0);
    }

    #[test]
    fn dynamic_disambiguation_of_i() {
        // Paper Figure 2 (left): `i` is √−1 on the first iteration, a
        // variable thereafter.
        let i = run("n = 0;\nwhile n < 3\n z = i;\n i = z + 1;\n n = n + 1;\nend");
        // Iter 1: z = i (builtin) = 1i, i = 1i + 1.
        // Iter 2: z = 1 + 1i, i = 2 + 1i. Iter 3: i = 3 + 1i.
        let z = i.var("i").unwrap();
        match z {
            Value::Complex(m) => {
                let v = m.first();
                assert_eq!(v.re, 3.0);
                assert_eq!(v.im, 1.0);
            }
            other => panic!("expected complex, got {other:?}"),
        }
    }

    #[test]
    fn complex_literals_and_arithmetic() {
        let i = run("z = 3 + 4i;\nm = abs(z);\nr = real(z);");
        assert_eq!(scalar(&i, "m"), 5.0);
        assert_eq!(scalar(&i, "r"), 3.0);
    }

    #[test]
    fn globals() {
        let mut i = Interp::new();
        i.load_source("function bump()\nglobal counter\ncounter = counter + 1;\n")
            .unwrap();
        i.eval("global counter\ncounter = 0;\nbump();\nbump();\nx = counter;")
            .unwrap();
        assert_eq!(scalar(&i, "x"), 2.0);
    }

    #[test]
    fn strings_and_disp() {
        let mut i = Interp::new();
        i.eval("s = 'hello';\ndisp(s);").unwrap();
        assert_eq!(i.ctx.printed, "hello\n");
    }

    #[test]
    fn errors_propagate() {
        let mut i = Interp::new();
        assert!(i.eval("x = undefined_thing + 1;").is_err());
        assert!(i.eval("v = [1 2]; y = v(10);").is_err());
        assert!(i.eval("A = [1 2; 3 4]; A(7) = 1;").is_err());
    }

    #[test]
    fn ans_is_set_by_expression_statements() {
        let i = run("3 + 4;");
        assert_eq!(scalar(&i, "ans"), 7.0);
    }

    #[test]
    fn for_iterates_matrix_columns() {
        let i = run("A = [1 2 3; 4 5 6];\ns = 0;\nfor col = A\n s = s + col(1);\nend");
        assert_eq!(scalar(&i, "s"), 6.0);
    }

    #[test]
    fn unsuppressed_output_is_displayed() {
        let mut i = Interp::new();
        i.eval("x = 42").unwrap();
        assert!(i.ctx.printed.contains("x = 42"));
    }

    #[test]
    fn clear_statement() {
        let mut i = Interp::new();
        i.eval("x = 1; clear x").unwrap();
        assert!(i.var("x").is_none());
        assert!(i.eval("y = x;").is_err());
    }

    #[test]
    fn short_circuit_operators() {
        // `y` is undefined; && must not evaluate the right side.
        let i = run("x = 0;\nif x > 0 && undefined_fn(x)\n r = 1;\nelse\n r = 2;\nend");
        assert_eq!(scalar(&i, "r"), 2.0);
    }
}
