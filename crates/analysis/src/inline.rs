//! The function inliner (paper §2.6.1, last rule).
//!
//! "MaJIC inlines calls to small (less than 200 lines of code) functions.
//! Inlining preserves the call-by-value semantics of MATLAB by making
//! copies of the actual parameters. However, read-only formal parameters
//! are not copied. … MaJIC does not attempt to inline more than 3 levels
//! of recursive calls in order to avoid code explosion." (§3.4)
//!
//! Strategy: calls in expression position are hoisted into temporary
//! assignments; the callee body is spliced in with all local variables
//! renamed, wrapped in a single-trip `for` loop so that top-level
//! `return`s become `break`s. Functions whose `return` sits inside one of
//! their own loops, or that touch globals, are not inlined.
//!
//! The "copies of the actual parameters" taken for written formals are
//! plain assignments (`__inlN_p = actual;`). With the runtime's
//! copy-on-write buffers those bindings are O(1) — the physical copy is
//! deferred to the formal's first store, and elided entirely when the
//! actual's buffer turns out to be uniquely owned by then. Read-only
//! formals skip even the binding.

use majic_ast::{BinOp, Expr, ExprKind, Function, LValue, NodeId, Span, Stmt, StmtKind};
use std::collections::{HashMap, HashSet};

/// Inliner configuration.
#[derive(Clone, Copy, Debug)]
pub struct InlineOptions {
    /// Only functions with fewer statements than this are inlined
    /// (paper: 200 lines).
    pub max_statements: usize,
    /// Maximum depth of recursive-call expansion (paper: 3).
    pub max_recursion: usize,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions {
            max_statements: 200,
            max_recursion: 3,
        }
    }
}

/// Inline eligible calls inside `function`, resolving callees from
/// `registry`. `next_node_id` continues the file's id allocation so new
/// nodes stay unique; it is updated in place.
pub fn inline_function(
    function: &Function,
    registry: &HashMap<String, Function>,
    opts: InlineOptions,
    next_node_id: &mut u32,
) -> Function {
    let _sp = majic_trace::Span::enter_with("inline", || vec![("fn", function.name.clone())]);
    let mut ctx = Inliner {
        registry,
        opts,
        next_id: next_node_id,
        tmp_counter: 0,
        depth: HashMap::new(),
        defined: function.params.iter().cloned().collect(),
    };
    let mut out = function.clone();
    out.body = ctx.expand_block(&out.body, &local_names(function));
    out
}

/// Names that are variables (not calls) inside a function: parameters,
/// outputs and every assigned name.
fn local_names(f: &Function) -> HashSet<String> {
    let mut names: HashSet<String> = f.params.iter().chain(f.outputs.iter()).cloned().collect();
    fn scan(stmts: &[Stmt], names: &mut HashSet<String>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign { lhs, .. } => {
                    names.insert(lhs.name().to_owned());
                }
                StmtKind::MultiAssign { lhs, .. } => {
                    for lv in lhs {
                        names.insert(lv.name().to_owned());
                    }
                }
                StmtKind::For { var, body, .. } => {
                    names.insert(var.clone());
                    scan(body, names);
                }
                StmtKind::While { body, .. } => scan(body, names),
                StmtKind::If {
                    branches,
                    else_body,
                } => {
                    for (_, b) in branches {
                        scan(b, names);
                    }
                    if let Some(b) = else_body {
                        scan(b, names);
                    }
                }
                StmtKind::Global(gs) => names.extend(gs.iter().cloned()),
                _ => {}
            }
        }
    }
    scan(&f.body, &mut names);
    names
}

fn count_statements(stmts: &[Stmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        n += 1;
        match &s.kind {
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (_, b) in branches {
                    n += count_statements(b);
                }
                if let Some(b) = else_body {
                    n += count_statements(b);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                n += count_statements(body);
            }
            _ => {}
        }
    }
    n
}

/// Does a `return` occur inside one of the function's own loops (which
/// would break the single-trip-loop lowering)?
fn has_return_in_loop(stmts: &[Stmt], in_loop: bool) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Return => in_loop,
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => has_return_in_loop(body, true),
        StmtKind::If {
            branches,
            else_body,
        } => {
            branches.iter().any(|(_, b)| has_return_in_loop(b, in_loop))
                || else_body
                    .as_ref()
                    .is_some_and(|b| has_return_in_loop(b, in_loop))
        }
        _ => false,
    })
}

fn has_globals_or_clear(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Global(_) | StmtKind::Clear(_) => true,
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => has_globals_or_clear(body),
        StmtKind::If {
            branches,
            else_body,
        } => {
            branches.iter().any(|(_, b)| has_globals_or_clear(b))
                || else_body.as_ref().is_some_and(|b| has_globals_or_clear(b))
        }
        _ => false,
    })
}

struct Inliner<'a> {
    registry: &'a HashMap<String, Function>,
    opts: InlineOptions,
    next_id: &'a mut u32,
    tmp_counter: u32,
    /// Current expansion depth per function name (recursion control).
    depth: HashMap<String, usize>,
    /// Variables definitely assigned at the current expansion point
    /// (params, plus every unconditional assignment seen so far).
    /// Reading one of these can never raise `Undefined`, which makes two
    /// things safe: substituting it for a read-only formal without a
    /// copy, and leaving it un-hoisted when a later operand's inlined
    /// body is spliced ahead of it. Conditionally-assigned names
    /// (if/while/for bodies) are deliberately excluded.
    defined: HashSet<String>,
}

/// Does this expression contain a contextual `end` or `:` that would
/// lose its meaning if the expression were hoisted out of the indexing
/// operation it appears in? `end`/`:` nested inside a further indexing
/// expression binds there and travels with it.
fn has_contextual_marker(e: &Expr, locals: &HashSet<String>) -> bool {
    match &e.kind {
        ExprKind::End | ExprKind::Colon => true,
        ExprKind::Apply { callee, args } => {
            // Indexing a local rebinds `end`; a real call does not.
            !locals.contains(callee) && args.iter().any(|a| has_contextual_marker(a, locals))
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            has_contextual_marker(lhs, locals) || has_contextual_marker(rhs, locals)
        }
        ExprKind::Unary { operand, .. } | ExprKind::Transpose { operand, .. } => {
            has_contextual_marker(operand, locals)
        }
        ExprKind::Range { start, step, stop } => {
            has_contextual_marker(start, locals)
                || step
                    .as_deref()
                    .is_some_and(|s| has_contextual_marker(s, locals))
                || has_contextual_marker(stop, locals)
        }
        ExprKind::Matrix(rows) => rows
            .iter()
            .flatten()
            .any(|el| has_contextual_marker(el, locals)),
        _ => false,
    }
}

impl<'a> Inliner<'a> {
    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(*self.next_id);
        *self.next_id += 1;
        id
    }

    fn fresh_tmp(&mut self, stem: &str) -> String {
        self.tmp_counter += 1;
        format!("__inl{}_{stem}", self.tmp_counter)
    }

    /// The raw eligibility check: `Err(None)` means `name` is not a
    /// user function at all (builtin or unknown — not an inlining
    /// decision), `Err(Some(reason))` a user function rejected for a
    /// reportable reason.
    fn eligibility(&self, name: &str) -> Result<&'a Function, Option<String>> {
        let Some(f) = self.registry.get(name) else {
            return Err(None);
        };
        let statements = count_statements(&f.body);
        if statements >= self.opts.max_statements {
            return Err(Some(format!(
                "{statements} statements ≥ the {}-statement limit",
                self.opts.max_statements
            )));
        }
        if f.outputs.is_empty() && !f.params.is_empty() {
            // Pure side-effect functions are rare; allow them anyway.
        }
        if has_return_in_loop(&f.body, false) {
            return Err(Some(
                "return inside a callee loop (breaks the single-trip-loop lowering)".to_owned(),
            ));
        }
        if has_globals_or_clear(&f.body) {
            return Err(Some("callee touches global/clear state".to_owned()));
        }
        let depth = *self.depth.get(name).unwrap_or(&0);
        if depth >= self.opts.max_recursion {
            return Err(Some(format!(
                "recursive expansion depth {depth} ≥ the {}-level limit",
                self.opts.max_recursion
            )));
        }
        Ok(f)
    }

    /// [`Inliner::eligibility`] plus an audit verdict for every decision
    /// about a *user* function (builtins never reach the inliner's
    /// decision and would only be noise).
    fn eligible(&self, name: &str) -> Option<&'a Function> {
        match self.eligibility(name) {
            Ok(f) => {
                majic_trace::audit::inline_verdict(|| majic_trace::audit::InlineVerdict {
                    callee: name.to_owned(),
                    inlined: true,
                    reason: format!(
                        "inlined ({} statements, expansion depth {})",
                        count_statements(&f.body),
                        *self.depth.get(name).unwrap_or(&0)
                    ),
                });
                Some(f)
            }
            Err(Some(reason)) => {
                majic_trace::audit::inline_verdict(|| majic_trace::audit::InlineVerdict {
                    callee: name.to_owned(),
                    inlined: false,
                    reason: format!("not inlined: {reason}"),
                });
                None
            }
            Err(None) => None,
        }
    }

    /// Could evaluating this expression fail or have an observable
    /// effect? Only literals and definitely-assigned identifiers are
    /// known safe; everything else (indexing, arithmetic that may hit an
    /// undefined name, residual calls) is treated as fallible.
    fn must_hoist(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Number { .. } | ExprKind::Str(_) | ExprKind::Colon | ExprKind::End => false,
            ExprKind::Ident(n) => !self.defined.contains(n),
            _ => true,
        }
    }

    /// Expand the operands of a multi-operand construct left-to-right,
    /// preserving MATLAB's evaluation order when a later operand's
    /// callee body is spliced out: every earlier operand that could
    /// fail is hoisted into a temporary evaluated *before* the splice.
    /// When an earlier operand cannot be hoisted (it carries a
    /// contextual `end`/`:` that must stay inside its subscript), the
    /// later call is left un-inlined instead. The returned list is the
    /// rewritten operands, in the same positions as the input.
    fn expand_operand_list(
        &mut self,
        exprs: &[Expr],
        locals: &HashSet<String>,
        out: &mut Vec<Stmt>,
        allow_splice: bool,
    ) -> Vec<Expr> {
        let mut done: Vec<Expr> = Vec::with_capacity(exprs.len());
        for e in exprs {
            let mut buf = Vec::new();
            let expanded = self.expand_expr(e, locals, &mut buf);
            if buf.is_empty() {
                done.push(expanded);
                continue;
            }
            let can_commit = allow_splice
                && done
                    .iter()
                    .all(|d| !self.must_hoist(d) || !has_contextual_marker(d, locals));
            if !can_commit {
                // Revert: keep the original call expression. The temps
                // allocated for the discarded splice are never emitted
                // or referenced again.
                majic_trace::audit::inline_verdict(|| majic_trace::audit::InlineVerdict {
                    callee: match &e.kind {
                        ExprKind::Apply { callee, .. } => callee.clone(),
                        _ => "<expr>".to_owned(),
                    },
                    inlined: false,
                    reason: "splice reverted: a contextual end/: pins an earlier operand \
                             in place, so evaluation order cannot be preserved"
                        .to_owned(),
                });
                done.push(e.clone());
                continue;
            }
            for d in done.iter_mut() {
                if !self.must_hoist(d) {
                    continue;
                }
                let tmp = self.fresh_tmp("seq");
                let lhs = LValue::Var {
                    name: tmp.clone(),
                    id: self.fresh_id(),
                    span: d.span,
                };
                out.push(Stmt {
                    span: d.span,
                    kind: StmtKind::Assign {
                        lhs,
                        rhs: d.clone(),
                        suppressed: true,
                    },
                });
                self.defined.insert(tmp.clone());
                *d = Expr {
                    id: self.fresh_id(),
                    span: d.span,
                    kind: ExprKind::Ident(tmp),
                };
            }
            out.extend(buf);
            done.push(expanded);
        }
        done
    }

    /// Expand calls inside a block. `locals` holds the caller's variable
    /// names, so that `x(3)` with `x` a local is recognized as indexing,
    /// not a call.
    fn expand_block(&mut self, stmts: &[Stmt], locals: &HashSet<String>) -> Vec<Stmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            self.expand_stmt(s, locals, &mut out);
        }
        out
    }

    fn expand_stmt(&mut self, s: &Stmt, locals: &HashSet<String>, out: &mut Vec<Stmt>) {
        match &s.kind {
            StmtKind::Assign {
                lhs,
                rhs,
                suppressed,
            } => {
                let rhs = self.expand_expr(rhs, locals, out);
                out.push(Stmt {
                    span: s.span,
                    kind: StmtKind::Assign {
                        lhs: lhs.clone(),
                        rhs,
                        suppressed: *suppressed,
                    },
                });
                // Both `x = …` and `x(i) = …` leave `x` defined
                // (indexed stores auto-vivify).
                self.defined.insert(lhs.name().to_owned());
            }
            StmtKind::Expr { expr, suppressed } => {
                let expr = self.expand_expr(expr, locals, out);
                out.push(Stmt {
                    span: s.span,
                    kind: StmtKind::Expr {
                        expr,
                        suppressed: *suppressed,
                    },
                });
            }
            StmtKind::MultiAssign {
                lhs,
                id,
                callee,
                args,
                suppressed,
            } => {
                let args = self.expand_operand_list(args, locals, out, true);
                if !locals.contains(callee) {
                    if let Some(callee_fn) = self.eligible(callee) {
                        let callee_fn = callee_fn.clone();
                        let results = self.splice(&callee_fn, &args, lhs.len(), out, s.span);
                        for (lv, tmp) in lhs.iter().zip(results) {
                            let rhs = Expr {
                                id: self.fresh_id(),
                                span: s.span,
                                kind: ExprKind::Ident(tmp),
                            };
                            out.push(Stmt {
                                span: s.span,
                                kind: StmtKind::Assign {
                                    lhs: lv.clone(),
                                    rhs,
                                    suppressed: true,
                                },
                            });
                        }
                        for lv in lhs {
                            self.defined.insert(lv.name().to_owned());
                        }
                        return;
                    }
                }
                out.push(Stmt {
                    span: s.span,
                    kind: StmtKind::MultiAssign {
                        lhs: lhs.clone(),
                        id: *id,
                        callee: callee.clone(),
                        args,
                        suppressed: *suppressed,
                    },
                });
                for lv in lhs {
                    self.defined.insert(lv.name().to_owned());
                }
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                // Hoisting out of the first condition is sound (it is
                // evaluated exactly once); later arms' conditions must not
                // be hoisted past earlier ones, so only the first arm's
                // condition is expanded.
                let mut new_branches = Vec::with_capacity(branches.len());
                // Assignments inside a branch are conditional: restore
                // the definedness set after each arm.
                let saved = self.defined.clone();
                for (i, (cond, body)) in branches.iter().enumerate() {
                    let cond = if i == 0 {
                        self.expand_expr(cond, locals, out)
                    } else {
                        cond.clone()
                    };
                    new_branches.push((cond, self.expand_block(body, locals)));
                    self.defined = saved.clone();
                }
                let else_body = else_body.as_ref().map(|b| self.expand_block(b, locals));
                self.defined = saved;
                out.push(Stmt {
                    span: s.span,
                    kind: StmtKind::If {
                        branches: new_branches,
                        else_body,
                    },
                });
            }
            StmtKind::While { cond, body } => {
                // The condition re-evaluates every trip; hoisting would
                // change semantics, so calls in while-conditions stay.
                // The body may run zero times: restore definedness after.
                let saved = self.defined.clone();
                let body = self.expand_block(body, locals);
                self.defined = saved;
                out.push(Stmt {
                    span: s.span,
                    kind: StmtKind::While {
                        cond: cond.clone(),
                        body,
                    },
                });
            }
            StmtKind::For {
                var,
                var_id,
                iter,
                body,
            } => {
                let iter = self.expand_expr(iter, locals, out);
                let mut locals2 = locals.clone();
                locals2.insert(var.clone());
                // Inside the body the loop variable is assigned; the
                // body itself may run zero times (empty range), so the
                // definedness set is restored afterwards.
                let saved = self.defined.clone();
                self.defined.insert(var.clone());
                let body = self.expand_block(body, &locals2);
                self.defined = saved;
                out.push(Stmt {
                    span: s.span,
                    kind: StmtKind::For {
                        var: var.clone(),
                        var_id: *var_id,
                        iter,
                        body,
                    },
                });
            }
            StmtKind::Clear(names) => {
                if names.is_empty() {
                    self.defined.clear();
                } else {
                    for n in names {
                        self.defined.remove(n);
                    }
                }
                out.push(s.clone());
            }
            StmtKind::Global(names) => {
                // A global's value (and whether it is set at all) is
                // unknowable here.
                for n in names {
                    self.defined.remove(n);
                }
                out.push(s.clone());
            }
            _ => out.push(s.clone()),
        }
    }

    /// Expand calls inside one expression, emitting hoisted statements.
    fn expand_expr(&mut self, e: &Expr, locals: &HashSet<String>, out: &mut Vec<Stmt>) -> Expr {
        let kind = match &e.kind {
            ExprKind::Apply { callee, args } => {
                let args = self.expand_operand_list(args, locals, out, true);
                if !locals.contains(callee) {
                    if let Some(callee_fn) = self.eligible(callee) {
                        let callee_fn = callee_fn.clone();
                        let results = self.splice(&callee_fn, &args, 1, out, e.span);
                        return Expr {
                            id: self.fresh_id(),
                            span: e.span,
                            kind: ExprKind::Ident(results[0].clone()),
                        };
                    }
                }
                ExprKind::Apply {
                    callee: callee.clone(),
                    args,
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                if matches!(op, BinOp::ShortAnd | BinOp::ShortOr) {
                    // The rhs of `&&`/`||` evaluates lazily; splicing a
                    // callee body out of it would force evaluation, so
                    // only the lhs is expanded.
                    ExprKind::Binary {
                        op: *op,
                        lhs: Box::new(self.expand_expr(lhs, locals, out)),
                        rhs: rhs.clone(),
                    }
                } else {
                    let operands = [(**lhs).clone(), (**rhs).clone()];
                    let mut v = self
                        .expand_operand_list(&operands, locals, out, true)
                        .into_iter();
                    ExprKind::Binary {
                        op: *op,
                        lhs: Box::new(v.next().expect("two operands in, two out")),
                        rhs: Box::new(v.next().expect("two operands in, two out")),
                    }
                }
            }
            ExprKind::Unary { op, operand } => ExprKind::Unary {
                op: *op,
                operand: Box::new(self.expand_expr(operand, locals, out)),
            },
            ExprKind::Range { start, step, stop } => {
                // The interpreter evaluates start, then stop, then step;
                // the operand list must follow that order.
                let mut operands = vec![(**start).clone(), (**stop).clone()];
                if let Some(s) = step {
                    operands.push((**s).clone());
                }
                let mut v = self.expand_operand_list(&operands, locals, out, true);
                let new_step = if step.is_some() {
                    Some(Box::new(v.pop().expect("step operand")))
                } else {
                    None
                };
                let new_stop = Box::new(v.pop().expect("stop operand"));
                let new_start = Box::new(v.pop().expect("start operand"));
                ExprKind::Range {
                    start: new_start,
                    step: new_step,
                    stop: new_stop,
                }
            }
            ExprKind::Matrix(rows) => {
                let flat: Vec<Expr> = rows.iter().flatten().cloned().collect();
                let mut v = self
                    .expand_operand_list(&flat, locals, out, true)
                    .into_iter();
                ExprKind::Matrix(
                    rows.iter()
                        .map(|row| {
                            row.iter()
                                .map(|_| v.next().expect("element count unchanged"))
                                .collect()
                        })
                        .collect(),
                )
            }
            ExprKind::Transpose { operand, conjugate } => ExprKind::Transpose {
                operand: Box::new(self.expand_expr(operand, locals, out)),
                conjugate: *conjugate,
            },
            other => other.clone(),
        };
        Expr {
            id: e.id,
            span: e.span,
            kind,
        }
    }

    /// Splice the callee body into `out`, returning the temp names bound
    /// to its first `nargout` outputs.
    fn splice(
        &mut self,
        callee: &Function,
        args: &[Expr],
        nargout: usize,
        out: &mut Vec<Stmt>,
        span: Span,
    ) -> Vec<String> {
        *self.depth.entry(callee.name.clone()).or_insert(0) += 1;
        self.tmp_counter += 1;
        let prefix = format!("__inl{}_", self.tmp_counter);

        let assigned = assigned_names(&callee.body);
        // Build the renaming map for callee locals.
        let mut rename: HashMap<String, RenameTo> = HashMap::new();
        let mut pre = Vec::new();
        for (k, formal) in callee.params.iter().enumerate() {
            let actual = args.get(k);
            let read_only = !assigned.contains(formal);
            match actual {
                // Read-only formals bound to simple actuals are
                // substituted directly — the paper's "read-only formal
                // parameters are not copied". An identifier actual
                // qualifies only when it is definitely assigned:
                // substituting a possibly-undefined name would delay its
                // `Undefined` error from the call site into the body.
                Some(a)
                    if read_only
                        && match &a.kind {
                            ExprKind::Number { .. } => true,
                            ExprKind::Ident(n) => self.defined.contains(n),
                            _ => false,
                        } =>
                {
                    rename.insert(formal.clone(), RenameTo::Expr(a.clone()));
                }
                Some(a) => {
                    let tmp = format!("{prefix}{formal}");
                    let lhs = LValue::Var {
                        name: tmp.clone(),
                        id: self.fresh_id(),
                        span,
                    };
                    pre.push(Stmt {
                        span,
                        kind: StmtKind::Assign {
                            lhs,
                            rhs: a.clone(),
                            suppressed: true,
                        },
                    });
                    self.defined.insert(tmp.clone());
                    rename.insert(formal.clone(), RenameTo::Name(tmp));
                }
                None => {
                    // Missing actual: leave undefined (runtime error if
                    // used, same as MATLAB).
                    rename.insert(formal.clone(), RenameTo::Name(format!("{prefix}{formal}")));
                }
            }
        }
        for name in assigned
            .iter()
            .chain(callee.outputs.iter())
            .chain(callee.params.iter())
        {
            rename
                .entry(name.clone())
                .or_insert_with(|| RenameTo::Name(format!("{prefix}{name}")));
        }

        // Rename and re-id the body.
        let mut body: Vec<Stmt> = callee
            .body
            .iter()
            .map(|s| self.rewrite_stmt(s, &rename))
            .collect();

        // Wrap in a single-trip loop so top-level `return` becomes `break`.
        if body_has_return(&body) {
            replace_returns(&mut body);
            let guard = self.fresh_tmp("once");
            let one = |me: &mut Self| Expr {
                id: me.fresh_id(),
                span,
                kind: ExprKind::Number {
                    value: 1.0,
                    imaginary: false,
                },
            };
            let start = one(self);
            let stop = one(self);
            let iter = Expr {
                id: self.fresh_id(),
                span,
                kind: ExprKind::Range {
                    start: Box::new(start),
                    step: None,
                    stop: Box::new(stop),
                },
            };
            let var_id = self.fresh_id();
            body = vec![Stmt {
                span,
                kind: StmtKind::For {
                    var: guard,
                    var_id,
                    iter,
                    body,
                },
            }];
        }

        out.extend(pre);
        // Recursively expand calls inside the inlined body (this is where
        // bounded recursive unrolling happens).
        let empty_locals: HashSet<String> = rename
            .values()
            .filter_map(|r| match r {
                RenameTo::Name(n) => Some(n.clone()),
                RenameTo::Expr(_) => None,
            })
            .collect();
        let expanded = self.expand_block(&body, &empty_locals);
        out.extend(expanded);

        let results: Vec<String> = callee
            .outputs
            .iter()
            .take(nargout.max(1))
            .map(|o| match &rename[o] {
                RenameTo::Name(n) => n.clone(),
                RenameTo::Expr(_) => unreachable!("outputs are always renamed"),
            })
            .collect();
        *self.depth.get_mut(&callee.name).expect("pushed above") -= 1;
        results
    }

    fn rewrite_stmt(&mut self, s: &Stmt, rename: &HashMap<String, RenameTo>) -> Stmt {
        let kind = match &s.kind {
            StmtKind::Expr { expr, suppressed } => StmtKind::Expr {
                expr: self.rewrite_expr(expr, rename),
                suppressed: *suppressed,
            },
            StmtKind::Assign {
                lhs,
                rhs,
                suppressed,
            } => StmtKind::Assign {
                lhs: self.rewrite_lvalue(lhs, rename),
                rhs: self.rewrite_expr(rhs, rename),
                suppressed: *suppressed,
            },
            StmtKind::MultiAssign {
                lhs,
                callee,
                args,
                suppressed,
                ..
            } => StmtKind::MultiAssign {
                lhs: lhs
                    .iter()
                    .map(|lv| self.rewrite_lvalue(lv, rename))
                    .collect(),
                id: self.fresh_id(),
                callee: callee.clone(),
                args: args.iter().map(|a| self.rewrite_expr(a, rename)).collect(),
                suppressed: *suppressed,
            },
            StmtKind::If {
                branches,
                else_body,
            } => StmtKind::If {
                branches: branches
                    .iter()
                    .map(|(c, b)| {
                        (
                            self.rewrite_expr(c, rename),
                            b.iter().map(|st| self.rewrite_stmt(st, rename)).collect(),
                        )
                    })
                    .collect(),
                else_body: else_body
                    .as_ref()
                    .map(|b| b.iter().map(|st| self.rewrite_stmt(st, rename)).collect()),
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond: self.rewrite_expr(cond, rename),
                body: body
                    .iter()
                    .map(|st| self.rewrite_stmt(st, rename))
                    .collect(),
            },
            StmtKind::For {
                var, iter, body, ..
            } => {
                let new_var = match rename.get(var) {
                    Some(RenameTo::Name(n)) => n.clone(),
                    _ => var.clone(),
                };
                StmtKind::For {
                    var: new_var,
                    var_id: self.fresh_id(),
                    iter: self.rewrite_expr(iter, rename),
                    body: body
                        .iter()
                        .map(|st| self.rewrite_stmt(st, rename))
                        .collect(),
                }
            }
            other => other.clone(),
        };
        Stmt { span: s.span, kind }
    }

    fn rewrite_lvalue(&mut self, lv: &LValue, rename: &HashMap<String, RenameTo>) -> LValue {
        match lv {
            LValue::Var { name, span, .. } => LValue::Var {
                name: match rename.get(name) {
                    Some(RenameTo::Name(n)) => n.clone(),
                    _ => name.clone(),
                },
                id: self.fresh_id(),
                span: *span,
            },
            LValue::Index {
                name, args, span, ..
            } => LValue::Index {
                name: match rename.get(name) {
                    Some(RenameTo::Name(n)) => n.clone(),
                    _ => name.clone(),
                },
                args: args.iter().map(|a| self.rewrite_expr(a, rename)).collect(),
                id: self.fresh_id(),
                span: *span,
            },
        }
    }

    fn rewrite_expr(&mut self, e: &Expr, rename: &HashMap<String, RenameTo>) -> Expr {
        let kind = match &e.kind {
            ExprKind::Ident(name) => match rename.get(name) {
                Some(RenameTo::Name(n)) => ExprKind::Ident(n.clone()),
                Some(RenameTo::Expr(sub)) => {
                    // Substitute, but with a fresh id for the copy.
                    let mut copy = sub.clone();
                    self.refresh_ids(&mut copy);
                    return copy;
                }
                None => ExprKind::Ident(name.clone()),
            },
            ExprKind::Apply { callee, args } => {
                let new_args: Vec<Expr> =
                    args.iter().map(|a| self.rewrite_expr(a, rename)).collect();
                match rename.get(callee) {
                    Some(RenameTo::Name(n)) => ExprKind::Apply {
                        callee: n.clone(),
                        args: new_args,
                    },
                    Some(RenameTo::Expr(sub)) => {
                        if let ExprKind::Ident(n) = &sub.kind {
                            // Indexing through a directly-substituted
                            // read-only parameter.
                            ExprKind::Apply {
                                callee: n.clone(),
                                args: new_args,
                            }
                        } else {
                            // A numeric literal can't be applied; keep the
                            // original name (runtime will error, matching
                            // MATLAB's behavior for such programs).
                            ExprKind::Apply {
                                callee: callee.clone(),
                                args: new_args,
                            }
                        }
                    }
                    None => ExprKind::Apply {
                        callee: callee.clone(),
                        args: new_args,
                    },
                }
            }
            ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
                op: *op,
                lhs: Box::new(self.rewrite_expr(lhs, rename)),
                rhs: Box::new(self.rewrite_expr(rhs, rename)),
            },
            ExprKind::Unary { op, operand } => ExprKind::Unary {
                op: *op,
                operand: Box::new(self.rewrite_expr(operand, rename)),
            },
            ExprKind::Range { start, step, stop } => ExprKind::Range {
                start: Box::new(self.rewrite_expr(start, rename)),
                step: step
                    .as_ref()
                    .map(|s| Box::new(self.rewrite_expr(s, rename))),
                stop: Box::new(self.rewrite_expr(stop, rename)),
            },
            ExprKind::Matrix(rows) => ExprKind::Matrix(
                rows.iter()
                    .map(|row| row.iter().map(|el| self.rewrite_expr(el, rename)).collect())
                    .collect(),
            ),
            ExprKind::Transpose { operand, conjugate } => ExprKind::Transpose {
                operand: Box::new(self.rewrite_expr(operand, rename)),
                conjugate: *conjugate,
            },
            other => other.clone(),
        };
        Expr {
            id: self.fresh_id(),
            span: e.span,
            kind,
        }
    }

    fn refresh_ids(&mut self, e: &mut Expr) {
        e.id = self.fresh_id();
        match &mut e.kind {
            ExprKind::Apply { args, .. } => args.iter_mut().for_each(|a| self.refresh_ids(a)),
            ExprKind::Range { start, step, stop } => {
                self.refresh_ids(start);
                if let Some(s) = step {
                    self.refresh_ids(s);
                }
                self.refresh_ids(stop);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Transpose { operand, .. } => {
                self.refresh_ids(operand)
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.refresh_ids(lhs);
                self.refresh_ids(rhs);
            }
            ExprKind::Matrix(rows) => rows
                .iter_mut()
                .flatten()
                .for_each(|el| self.refresh_ids(el)),
            _ => {}
        }
    }
}

#[derive(Clone, Debug)]
enum RenameTo {
    Name(String),
    Expr(Expr),
}

fn assigned_names(stmts: &[Stmt]) -> HashSet<String> {
    let mut names = HashSet::new();
    fn scan(stmts: &[Stmt], names: &mut HashSet<String>) {
        for s in stmts {
            match &s.kind {
                StmtKind::Assign { lhs, .. } => {
                    names.insert(lhs.name().to_owned());
                }
                StmtKind::MultiAssign { lhs, .. } => {
                    for lv in lhs {
                        names.insert(lv.name().to_owned());
                    }
                }
                StmtKind::For { var, body, .. } => {
                    names.insert(var.clone());
                    scan(body, names);
                }
                StmtKind::While { body, .. } => scan(body, names),
                StmtKind::If {
                    branches,
                    else_body,
                } => {
                    for (_, b) in branches {
                        scan(b, names);
                    }
                    if let Some(b) = else_body {
                        scan(b, names);
                    }
                }
                _ => {}
            }
        }
    }
    scan(stmts, &mut names);
    names
}

fn body_has_return(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Return => true,
        StmtKind::If {
            branches,
            else_body,
        } => {
            branches.iter().any(|(_, b)| body_has_return(b))
                || else_body.as_ref().is_some_and(|b| body_has_return(b))
        }
        // Returns inside loops disqualify inlining earlier; no need to
        // look inside loops here.
        _ => false,
    })
}

fn replace_returns(stmts: &mut [Stmt]) {
    for s in stmts {
        match &mut s.kind {
            StmtKind::Return => s.kind = StmtKind::Break,
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (_, b) in branches {
                    replace_returns(b);
                }
                if let Some(b) = else_body {
                    replace_returns(b);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majic_ast::parse_source;

    fn inline_first(src: &str, opts: InlineOptions) -> (Function, u32) {
        let file = parse_source(src).unwrap();
        let registry: HashMap<String, Function> = file
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        let mut next = file.node_count;
        let f = inline_function(&file.functions[0], &registry, opts, &mut next);
        (f, next)
    }

    fn render(f: &Function) -> String {
        format!("{f}")
    }

    #[test]
    fn simple_call_is_expanded() {
        let (f, _) = inline_first(
            "function y = main(x)\ny = sq(x) + 1;\nfunction z = sq(a)\nz = a * a;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(!text.contains("sq("), "call survived: {text}");
        assert!(text.contains("* "), "inlined body missing: {text}");
    }

    #[test]
    fn read_only_param_is_not_copied() {
        let (f, _) = inline_first(
            "function y = main(x)\ny = sq(x);\nfunction z = sq(a)\nz = a * a;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        // `a` is read-only, the actual `x` is simple → direct substitution,
        // no `__inl…_a = x` copy statement.
        assert!(!text.contains("_a ="), "unexpected copy: {text}");
        assert!(text.contains("x * x"), "substitution missing: {text}");
    }

    #[test]
    fn written_param_gets_a_copy() {
        let (f, _) = inline_first(
            "function y = main(x)\ny = bump(x);\nfunction z = bump(a)\na = a + 1;\nz = a;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(text.contains("_a = x"), "copy missing: {text}");
    }

    #[test]
    fn complex_actual_gets_a_copy_even_if_read_only() {
        let (f, _) = inline_first(
            "function y = main(x)\ny = sq(x + 1);\nfunction z = sq(a)\nz = a * a;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(text.contains("_a = (x + 1)"), "copy missing: {text}");
    }

    #[test]
    fn early_return_becomes_single_trip_loop() {
        let (f, _) = inline_first(
            "function y = main(x)\ny = clamp(x);\nfunction z = clamp(a)\nif a > 1\n z = 1;\n return\nend\nz = a;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(text.contains("for __inl"), "guard loop missing: {text}");
        assert!(text.contains("break"), "break missing: {text}");
        assert!(!text.contains("return"), "return survived: {text}");
    }

    #[test]
    fn return_inside_callee_loop_blocks_inlining() {
        let (f, _) = inline_first(
            "function y = main(x)\ny = findit(x);\nfunction z = findit(a)\nz = 0;\nfor k = 1:10\n if k > a\n  z = k;\n  return\n end\nend\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(text.contains("findit("), "should not inline: {text}");
    }

    #[test]
    fn recursion_unrolls_exactly_three_levels() {
        let (f, _) = inline_first(
            "function y = main(n)\ny = fib(n);\nfunction f = fib(n)\nif n < 2\n f = n;\n return\nend\nf = fib(n - 1) + fib(n - 2);\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        // After 3 levels of expansion, residual calls remain.
        assert!(text.contains("fib("), "expected residual calls: {text}");
        // And there must be several inlined frames.
        let frames = text.matches("for __inl").count();
        assert!(frames >= 3, "expected >=3 inlined frames, got {frames}");
    }

    #[test]
    fn large_functions_are_not_inlined() {
        let mut body = String::new();
        for k in 0..250 {
            body.push_str(&format!("z = {k};\n"));
        }
        let src = format!("function y = main(x)\ny = big(x);\nfunction z = big(a)\n{body}z = a;\n");
        let (f, _) = inline_first(&src, InlineOptions::default());
        assert!(render(&f).contains("big("));
    }

    #[test]
    fn indexing_a_local_is_not_a_call() {
        // `x(2)` where x is a parameter must not be treated as a call even
        // if a function named x exists.
        let (f, _) = inline_first(
            "function y = main(x)\ny = x(2);\nfunction z = x(a)\nz = a;\n",
            InlineOptions::default(),
        );
        assert!(render(&f).contains("x(2)"));
    }

    #[test]
    fn multi_assign_inlines() {
        let (f, _) = inline_first(
            "function y = main(x)\n[a, b] = two(x);\ny = a + b;\nfunction [p, q] = two(v)\np = v + 1;\nq = v + 2;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(!text.contains("two("), "{text}");
        assert!(text.contains("a = __inl"), "{text}");
    }

    #[test]
    fn possibly_undefined_actual_is_copied_not_substituted() {
        // `g` is only conditionally assigned. Substituting it for the
        // read-only formal would move its `Undefined` error from the
        // call site into the middle of the spliced body; a copy at the
        // call site keeps the error where the interpreter raises it.
        let (f, _) = inline_first(
            "function r = main(p)\nif p > 2\n g = 3;\nend\nr = f1(g);\nfunction r = f1(a)\nm = 7;\nr = a + m;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(text.contains("_a = g"), "copy missing: {text}");
    }

    #[test]
    fn definitely_assigned_actual_is_still_substituted() {
        let (f, _) = inline_first(
            "function r = main(p)\ng = p + 1;\nr = f1(g);\nfunction r = f1(a)\nr = a * a;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(!text.contains("_a ="), "unexpected copy: {text}");
        assert!(text.contains("g * g"), "substitution missing: {text}");
    }

    #[test]
    fn earlier_fallible_operand_is_sequenced_before_splice() {
        // `v(1)` can fail; the interpreter evaluates it before the call
        // to f1, so the splice must not push f1's body ahead of it.
        let (f, _) = inline_first(
            "function r = main(v)\nr = v(1) + f1(2);\nfunction r = f1(a)\nr = a * 3;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(!text.contains("f1("), "call survived: {text}");
        let seq = text.find("_seq").expect("sequencing temp missing");
        let body = text.find("* 3").expect("inlined body missing");
        assert!(seq < body, "operand not sequenced before splice: {text}");
    }

    #[test]
    fn contextual_end_blocks_reordering_inline() {
        // `(end - 1)` cannot be hoisted out of the subscript position
        // it appears in, so the later call stays un-inlined rather than
        // being spliced ahead of it.
        let (f, _) = inline_first(
            "function r = main(v)\nr = v((end - 1) + f1(2));\nfunction r = f1(a)\nr = a * 3;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(text.contains("f1("), "should not inline: {text}");
    }

    #[test]
    fn end_inside_local_indexing_travels_with_its_operand() {
        // `v(end)` binds `end` to `v`'s extent, so the whole operand is
        // hoistable and the later call still inlines.
        let (f, _) = inline_first(
            "function r = main(v)\nr = v(v(end)) + f1(2);\nfunction r = f1(a)\nr = a * 3;\n",
            InlineOptions::default(),
        );
        let text = render(&f);
        assert!(!text.contains("f1("), "call survived: {text}");
    }

    #[test]
    fn node_ids_stay_unique_after_inlining() {
        let src = "function y = main(x)\ny = sq(x) + sq(x + 1);\nfunction z = sq(a)\nz = a * a;\n";
        let file = parse_source(src).unwrap();
        let registry: HashMap<String, Function> = file
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.clone()))
            .collect();
        let mut next = file.node_count;
        let f = inline_function(
            &file.functions[0],
            &registry,
            InlineOptions::default(),
            &mut next,
        );
        let mut seen = std::collections::HashSet::new();
        fn walk_stmts(stmts: &[Stmt], seen: &mut std::collections::HashSet<NodeId>) {
            for s in stmts {
                match &s.kind {
                    StmtKind::Assign { lhs, rhs, .. } => {
                        assert!(seen.insert(lhs.id()), "dup lvalue id");
                        rhs.walk(&mut |e| assert!(seen.insert(e.id), "dup id {}", e.id));
                    }
                    StmtKind::For { iter, body, .. } => {
                        iter.walk(&mut |e| assert!(seen.insert(e.id), "dup id {}", e.id));
                        walk_stmts(body, seen);
                    }
                    StmtKind::If {
                        branches,
                        else_body,
                    } => {
                        for (c, b) in branches {
                            c.walk(&mut |e| assert!(seen.insert(e.id), "dup id {}", e.id));
                            walk_stmts(b, seen);
                        }
                        if let Some(b) = else_body {
                            walk_stmts(b, seen);
                        }
                    }
                    _ => {}
                }
            }
        }
        walk_stmts(&f.body, &mut seen);
    }
}
