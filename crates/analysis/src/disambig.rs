//! Symbol disambiguation by reaching-definitions dataflow (paper §2.1).

use majic_ast::{Expr, ExprKind, Function, LValue, NodeId, Stmt, StmtKind};
use majic_runtime::builtins::Builtin;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Dense index of a variable in a function's static symbol table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a symbol occurrence means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolKind {
    /// Definitely a variable (has a reaching variable definition on *all*
    /// paths).
    Variable(VarId),
    /// A built-in primitive or constant.
    Builtin(Builtin),
    /// A user-defined function known to the session.
    UserFunction,
    /// Defined on some paths only — the paper's Figure 2 cases. MaJIC
    /// "defers their processing until runtime".
    Ambiguous(VarId),
    /// No definition, no builtin, no function: a runtime error if reached.
    Unknown,
}

/// Analysis results for one function (the paper's "static symbol table"
/// plus U/D chains).
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    /// Variable names, indexed by [`VarId`]. Parameters first, then
    /// outputs, then locals in order of first definition.
    pub vars: Vec<String>,
    /// Symbol meaning per AST node (`Ident` / `Apply` / lvalue ids).
    pub symbols: HashMap<NodeId, SymbolKind>,
    /// Use-def chains: for each variable *use*, the assignment sites that
    /// may reach it (lvalue node ids; parameter defs use the function's
    /// header pseudo-ids).
    pub ud_chains: HashMap<NodeId, Vec<NodeId>>,
}

impl SymbolTable {
    /// Id of a variable by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v == name)
            .map(|i| VarId(i as u32))
    }

    /// Number of variables in the frame.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The meaning recorded for a node (defaults to `Unknown`).
    pub fn kind(&self, id: NodeId) -> SymbolKind {
        self.symbols
            .get(&id)
            .copied()
            .unwrap_or(SymbolKind::Unknown)
    }
}

/// A function together with its symbol table.
#[derive(Clone, Debug)]
pub struct DisambiguatedFunction {
    /// The analyzed function (unchanged).
    pub function: Function,
    /// Its static symbol table and symbol annotations.
    pub table: SymbolTable,
}

/// Per-variable dataflow fact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VarFact {
    /// Defined on all paths reaching this point?
    definite: bool,
    /// Assignment sites that may reach this point.
    defs: BTreeSet<NodeId>,
}

/// The dataflow state: facts per variable name.
#[derive(Clone, Debug, Default, PartialEq)]
struct State {
    vars: HashMap<String, VarFact>,
    /// Set when the current path has returned/broken (facts frozen).
    reachable: bool,
}

impl State {
    fn entry() -> State {
        State {
            vars: HashMap::new(),
            reachable: true,
        }
    }

    fn define(&mut self, name: &str, site: NodeId, definite: bool) {
        let fact = self.vars.entry(name.to_owned()).or_default();
        if definite {
            fact.definite = true;
            fact.defs = BTreeSet::from([site]);
        } else {
            fact.defs.insert(site);
        }
    }

    fn clear_var(&mut self, name: &str) {
        self.vars.remove(name);
    }

    fn clear_all(&mut self) {
        self.vars.clear();
    }

    /// Join of two path states (at control-flow merges).
    fn join(&self, other: &State) -> State {
        if !self.reachable {
            return other.clone();
        }
        if !other.reachable {
            return self.clone();
        }
        let mut vars: HashMap<String, VarFact> = HashMap::new();
        for (name, a) in &self.vars {
            let mut fact = a.clone();
            match other.vars.get(name) {
                Some(b) => {
                    fact.definite = a.definite && b.definite;
                    fact.defs.extend(b.defs.iter().copied());
                }
                None => fact.definite = false,
            }
            vars.insert(name.clone(), fact);
        }
        for (name, b) in &other.vars {
            if !self.vars.contains_key(name) {
                let mut fact = b.clone();
                fact.definite = false;
                vars.insert(name.clone(), fact);
            }
        }
        State {
            vars,
            reachable: true,
        }
    }
}

struct Analyzer<'a> {
    known_functions: &'a HashSet<String>,
    table: SymbolTable,
    var_index: HashMap<String, VarId>,
    /// States captured at `break` / `continue` sites of the innermost loop.
    break_states: Vec<State>,
    continue_states: Vec<State>,
}

impl<'a> Analyzer<'a> {
    fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.var_index.get(name) {
            return id;
        }
        let id = VarId(self.table.vars.len() as u32);
        self.table.vars.push(name.to_owned());
        self.var_index.insert(name.to_owned(), id);
        id
    }

    fn record_use(&mut self, id: NodeId, name: &str, state: &State) -> SymbolKind {
        let kind = match state.vars.get(name) {
            Some(fact) if fact.definite => SymbolKind::Variable(self.intern(name)),
            Some(fact) if !fact.defs.is_empty() => SymbolKind::Ambiguous(self.intern(name)),
            _ => {
                if let Some(b) = Builtin::lookup(name) {
                    SymbolKind::Builtin(b)
                } else if self.known_functions.contains(name) {
                    SymbolKind::UserFunction
                } else {
                    SymbolKind::Unknown
                }
            }
        };
        if let Some(fact) = state.vars.get(name) {
            if !fact.defs.is_empty() {
                self.table
                    .ud_chains
                    .insert(id, fact.defs.iter().copied().collect());
            }
        }
        self.table.symbols.insert(id, kind);
        kind
    }

    fn visit_expr(&mut self, e: &Expr, state: &State) {
        match &e.kind {
            ExprKind::Ident(name) => {
                self.record_use(e.id, name, state);
            }
            ExprKind::Apply { callee, args } => {
                self.record_use(e.id, callee, state);
                for a in args {
                    self.visit_expr(a, state);
                }
            }
            ExprKind::Range { start, step, stop } => {
                self.visit_expr(start, state);
                if let Some(s) = step {
                    self.visit_expr(s, state);
                }
                self.visit_expr(stop, state);
            }
            ExprKind::Unary { operand, .. } => self.visit_expr(operand, state),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.visit_expr(lhs, state);
                self.visit_expr(rhs, state);
            }
            ExprKind::Matrix(rows) => {
                for row in rows {
                    for el in row {
                        self.visit_expr(el, state);
                    }
                }
            }
            ExprKind::Transpose { operand, .. } => self.visit_expr(operand, state),
            ExprKind::Number { .. } | ExprKind::Str(_) | ExprKind::Colon | ExprKind::End => {}
        }
    }

    fn define_lvalue(&mut self, lv: &LValue, state: &mut State) {
        match lv {
            LValue::Var { name, id, .. } => {
                let vid = self.intern(name);
                state.define(name, *id, true);
                self.table.symbols.insert(*id, SymbolKind::Variable(vid));
            }
            LValue::Index { name, args, id, .. } => {
                // `A(i) = …` *uses* A (it must exist or be growable) and
                // defines it. Record the use first against the incoming
                // state, then the def.
                for a in args {
                    self.visit_expr(a, state);
                }
                let vid = self.intern(name);
                // Indexed assignment to an undefined name creates the
                // array in MATLAB, so it is a definition either way.
                self.record_use(*id, name, state);
                state.define(name, *id, true);
                self.table.symbols.insert(*id, SymbolKind::Variable(vid));
            }
        }
    }

    fn visit_block(&mut self, stmts: &[Stmt], mut state: State) -> State {
        for s in stmts {
            if !state.reachable {
                // Dead code after return/break: still analyze with an
                // empty-ish state so annotations exist.
                state.reachable = true;
            }
            state = self.visit_stmt(s, state);
        }
        state
    }

    fn visit_stmt(&mut self, s: &Stmt, mut state: State) -> State {
        match &s.kind {
            StmtKind::Expr { expr, .. } => {
                self.visit_expr(expr, &state);
                state
            }
            StmtKind::Assign { lhs, rhs, .. } => {
                self.visit_expr(rhs, &state);
                self.define_lvalue(lhs, &mut state);
                state
            }
            StmtKind::MultiAssign {
                lhs,
                id,
                callee,
                args,
                ..
            } => {
                for a in args {
                    self.visit_expr(a, &state);
                }
                // Multi-assign callees are always calls, never indexing.
                let kind = if let Some(b) = Builtin::lookup(callee) {
                    SymbolKind::Builtin(b)
                } else if self.known_functions.contains(callee) {
                    SymbolKind::UserFunction
                } else {
                    SymbolKind::Unknown
                };
                self.table.symbols.insert(*id, kind);
                for lv in lhs {
                    self.define_lvalue(lv, &mut state);
                }
                state
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                let mut out: Option<State> = None;
                let fall = state.clone();
                for (cond, body) in branches {
                    self.visit_expr(cond, &fall);
                    let branch_out = self.visit_block(body, fall.clone());
                    out = Some(match out {
                        Some(o) => o.join(&branch_out),
                        None => branch_out,
                    });
                    // `fall` models reaching the next arm's condition.
                }
                let else_out = match else_body {
                    Some(body) => self.visit_block(body, fall),
                    None => fall,
                };
                match out {
                    Some(o) => o.join(&else_out),
                    None => else_out,
                }
            }
            StmtKind::While { cond, body } => {
                // Two-pass fixpoint: facts have bounded height, so a second
                // pass with the first pass's maybe-defs folded in reaches
                // the fixpoint.
                self.visit_expr(cond, &state);
                let saved_breaks = std::mem::take(&mut self.break_states);
                let saved_continues = std::mem::take(&mut self.continue_states);
                let first = self.visit_block(body, state.clone());
                let looped = state.join(&first);
                self.break_states.clear();
                self.continue_states.clear();
                self.visit_expr(cond, &looped);
                let second = self.visit_block(body, looped.clone());
                let mut exit = state.join(&looped).join(&second);
                for b in std::mem::replace(&mut self.break_states, saved_breaks) {
                    exit = exit.join(&b);
                }
                self.continue_states = saved_continues;
                exit
            }
            StmtKind::For {
                var,
                var_id,
                iter,
                body,
            } => {
                self.visit_expr(iter, &state);
                let vid = self.intern(var);
                self.table
                    .symbols
                    .insert(*var_id, SymbolKind::Variable(vid));
                // The induction variable is definitely assigned inside the
                // body; after the loop it is only maybe-assigned (empty
                // ranges skip the body entirely).
                let mut body_in = state.clone();
                body_in.define(var, *var_id, true);
                let saved_breaks = std::mem::take(&mut self.break_states);
                let saved_continues = std::mem::take(&mut self.continue_states);
                let first = self.visit_block(body, body_in.clone());
                let looped = body_in.join(&first);
                self.break_states.clear();
                self.continue_states.clear();
                let second = self.visit_block(body, looped.clone());
                let mut exit = state.join(&looped).join(&second);
                for b in std::mem::replace(&mut self.break_states, saved_breaks) {
                    exit = exit.join(&b);
                }
                self.continue_states = saved_continues;
                exit
            }
            StmtKind::Break => {
                self.break_states.push(state.clone());
                state.reachable = false;
                state
            }
            StmtKind::Continue => {
                self.continue_states.push(state.clone());
                state.reachable = false;
                state
            }
            StmtKind::Return => {
                state.reachable = false;
                state
            }
            StmtKind::Global(names) => {
                for n in names {
                    let site = NodeId(u32::MAX); // globals defined elsewhere
                    self.intern(n);
                    state.define(n, site, true);
                }
                state
            }
            StmtKind::Clear(names) => {
                if names.is_empty() {
                    state.clear_all();
                } else {
                    for n in names {
                        state.clear_var(n);
                    }
                }
                state
            }
        }
    }
}

/// Disambiguate the symbols of one function (paper Figure 1, pass 2).
///
/// `known_functions` lists the user-function names visible to the session
/// (the repository's directory snoop provides these).
pub fn disambiguate(
    function: &Function,
    known_functions: &HashSet<String>,
) -> DisambiguatedFunction {
    let _sp = majic_trace::Span::enter_with("disambig", || vec![("fn", function.name.clone())]);
    let mut a = Analyzer {
        known_functions,
        table: SymbolTable::default(),
        var_index: HashMap::new(),
        break_states: Vec::new(),
        continue_states: Vec::new(),
    };
    let mut state = State::entry();
    // Formal parameters are defined at entry (definition site: the header,
    // which has no node id — use a pseudo id outside the file's range).
    for p in &function.params {
        a.intern(p);
        state.define(p, NodeId(u32::MAX - 1), true);
    }
    for o in &function.outputs {
        a.intern(o);
    }
    a.visit_block(&function.body, state);
    DisambiguatedFunction {
        function: function.clone(),
        table: a.table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use majic_ast::parse_source;

    fn analyze(src: &str) -> DisambiguatedFunction {
        let file = parse_source(src).unwrap();
        let known: HashSet<String> = file.functions.iter().map(|f| f.name.clone()).collect();
        disambiguate(&file.functions[0], &known)
    }

    /// Find the annotation of the first Ident/Apply with the given name.
    fn kind_of(d: &DisambiguatedFunction, name: &str) -> Vec<SymbolKind> {
        let mut out = Vec::new();
        for stmt in &d.function.body {
            collect(stmt, name, &d.table, &mut out);
        }
        out
    }

    fn on_expr(e: &Expr, name: &str, t: &SymbolTable, out: &mut Vec<SymbolKind>) {
        e.walk(&mut |e| match &e.kind {
            ExprKind::Ident(n) | ExprKind::Apply { callee: n, .. } if n == name => {
                out.push(t.kind(e.id));
            }
            _ => {}
        });
    }

    fn collect(s: &Stmt, name: &str, t: &SymbolTable, out: &mut Vec<SymbolKind>) {
        match &s.kind {
            StmtKind::Expr { expr, .. } => on_expr(expr, name, t, out),
            StmtKind::Assign { rhs, .. } => on_expr(rhs, name, t, out),
            StmtKind::MultiAssign { args, .. } => {
                args.iter().for_each(|a| on_expr(a, name, t, out));
            }
            StmtKind::If {
                branches,
                else_body,
            } => {
                for (c, b) in branches {
                    on_expr(c, name, t, out);
                    for st in b {
                        collect(st, name, t, out);
                    }
                }
                if let Some(b) = else_body {
                    for st in b {
                        collect(st, name, t, out);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                on_expr(cond, name, t, out);
                for st in body {
                    collect(st, name, t, out);
                }
            }
            StmtKind::For { iter, body, .. } => {
                on_expr(iter, name, t, out);
                for st in body {
                    collect(st, name, t, out);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn params_are_variables() {
        let d = analyze("function y = f(x)\ny = x + 1;\n");
        assert!(matches!(kind_of(&d, "x")[0], SymbolKind::Variable(_)));
    }

    #[test]
    fn builtins_resolve() {
        let d = analyze("function y = f(x)\ny = zeros(x) + pi;\n");
        assert!(matches!(kind_of(&d, "zeros")[0], SymbolKind::Builtin(_)));
        assert!(matches!(kind_of(&d, "pi")[0], SymbolKind::Builtin(_)));
    }

    #[test]
    fn user_functions_resolve() {
        let d = analyze("function y = f(x)\ny = g(x);\nfunction y = g(x)\ny = x;\n");
        assert!(matches!(kind_of(&d, "g")[0], SymbolKind::UserFunction));
    }

    #[test]
    fn unknown_symbols_flagged() {
        let d = analyze("function y = f(x)\ny = mystery(x);\n");
        assert!(matches!(kind_of(&d, "mystery")[0], SymbolKind::Unknown));
    }

    #[test]
    fn paper_figure2_left_i_is_ambiguous() {
        // First use of `i` in the loop body: builtin √−1 on iteration 1,
        // the variable thereafter → Ambiguous.
        let d = analyze("function f()\nwhile (1 < 2)\n z = i;\n i = z + 1;\nend\n");
        let kinds = kind_of(&d, "i");
        assert!(
            matches!(kinds[0], SymbolKind::Ambiguous(_)),
            "got {kinds:?}"
        );
    }

    #[test]
    fn paper_figure2_right_y_is_variable_via_control_flow() {
        // `x = y` executes only when p >= 2, by which time `y = p` has run.
        // Plain reaching definitions (ignoring the guard) see y as only
        // maybe-defined → Ambiguous, which is the conservative answer
        // MaJIC defers to runtime.
        let d = analyze(
            "function f(N)\nx = 0;\nfor p = 1:N\n if (p >= 2)\n x = y;\n end\n y = p;\nend\n",
        );
        let kinds = kind_of(&d, "y");
        assert!(
            matches!(kinds[0], SymbolKind::Ambiguous(_)),
            "got {kinds:?}"
        );
    }

    #[test]
    fn sequential_definition_is_definite() {
        let d = analyze("function f()\na = 1;\nb = a + 1;\n");
        assert!(matches!(kind_of(&d, "a")[0], SymbolKind::Variable(_)));
    }

    #[test]
    fn if_without_else_is_maybe() {
        let d = analyze("function f(c)\nif c > 0\n t = 1;\nend\nu = t;\n");
        assert!(matches!(kind_of(&d, "t")[0], SymbolKind::Ambiguous(_)));
    }

    #[test]
    fn both_branches_define_definitely() {
        let d = analyze("function f(c)\nif c > 0\n t = 1;\nelse\n t = 2;\nend\nu = t;\n");
        assert!(matches!(kind_of(&d, "t")[0], SymbolKind::Variable(_)));
    }

    #[test]
    fn clear_forgets_definitions() {
        let d = analyze("function f()\nt = 1;\nclear t\nu = t;\n");
        // After clear, `t` has no definition and no builtin → Unknown.
        assert!(matches!(kind_of(&d, "t")[0], SymbolKind::Unknown));
    }

    #[test]
    fn loop_variable_is_definite_in_body_maybe_after() {
        let d = analyze("function f(N)\nfor k = 1:N\n a = k;\nend\nb = k;\n");
        let kinds = kind_of(&d, "k");
        // Use inside the body: variable; use after the loop: ambiguous.
        assert!(matches!(kinds[0], SymbolKind::Variable(_)));
        assert!(matches!(kinds[1], SymbolKind::Ambiguous(_)));
    }

    #[test]
    fn loop_carried_def_is_seen_on_second_pass() {
        // `s` is defined before the loop and updated inside; the use in
        // the body is definite.
        let d = analyze("function f(N)\ns = 0;\nfor k = 1:N\n s = s + k;\nend\n");
        assert!(matches!(kind_of(&d, "s")[0], SymbolKind::Variable(_)));
    }

    #[test]
    fn while_body_def_reaches_own_use_as_maybe() {
        let d = analyze("function f()\nwhile (1 < 2)\n u = v;\n v = 1;\nend\n");
        assert!(matches!(kind_of(&d, "v")[0], SymbolKind::Ambiguous(_)));
    }

    #[test]
    fn indexed_assignment_defines() {
        let d = analyze("function f(n)\nA(1) = 0;\nfor k = 2:n\n A(k) = A(k-1) + 1;\nend\n");
        assert!(matches!(kind_of(&d, "A")[0], SymbolKind::Variable(_)));
    }

    #[test]
    fn shadowing_a_builtin() {
        let d = analyze("function f()\npi = 3;\ny = pi;\n");
        assert!(matches!(kind_of(&d, "pi")[0], SymbolKind::Variable(_)));
    }

    #[test]
    fn ud_chains_link_uses_to_defs() {
        let d = analyze("function f(c)\nif c > 0\n t = 1;\nelse\n t = 2;\nend\nu = t;\n");
        // The use of t should have two reaching defs.
        let use_id = {
            let mut found = None;
            for stmt in &d.function.body {
                if let StmtKind::Assign { rhs, .. } = &stmt.kind {
                    rhs.walk(&mut |e| {
                        if matches!(&e.kind, ExprKind::Ident(n) if n == "t") {
                            found = Some(e.id);
                        }
                    });
                }
            }
            found.unwrap()
        };
        assert_eq!(d.table.ud_chains[&use_id].len(), 2);
    }

    #[test]
    fn symbol_table_interns_in_order() {
        let d = analyze("function [a, b] = f(x, y)\nc = x;\na = c;\nb = y;\n");
        assert_eq!(d.table.vars, ["x", "y", "a", "b", "c"]);
        assert_eq!(d.table.var_id("c"), Some(VarId(4)));
        assert_eq!(d.table.var_count(), 5);
    }

    #[test]
    fn break_paths_join_into_exit() {
        let d = analyze(
            "function f(N)\nfor k = 1:N\n if k > 2\n  t = 1;\n  break\n end\nend\nu = t;\n",
        );
        // t defined only on the break path → maybe at exit.
        assert!(matches!(kind_of(&d, "t")[0], SymbolKind::Ambiguous(_)));
    }
}
