//! MaJIC's preliminary dataflow analyses (paper §2.1, Figure 1 pass 2).
//!
//! * [`disambiguate`] — decide what each symbol occurrence means
//!   (variable, builtin primitive, user function, or genuinely ambiguous)
//!   by a variation of reaching-definitions analysis: *a symbol that has a
//!   reaching definition as a variable on all paths leading to it must be
//!   a variable*. Ambiguous symbols (the paper's Figure 2: `i` used both
//!   as √−1 and as a loop-carried variable) are deferred to runtime.
//! * Use-def chains, produced as a byproduct of the same dataflow.
//! * The static symbol table: every variable of a function gets a dense
//!   [`VarId`] used by the code generators for frame-slot addressing.
//! * [`inline_function`] — the function inliner (paper §2.6.1): calls to
//!   small functions are expanded in place, preserving call-by-value by
//!   copying actual parameters (but not read-only ones), with recursion
//!   unrolled at most 3 levels deep.

mod disambig;
mod inline;

pub use disambig::{disambiguate, DisambiguatedFunction, SymbolKind, SymbolTable, VarId};
pub use inline::{inline_function, InlineOptions};
