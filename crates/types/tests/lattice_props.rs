//! Property-based tests of the lattice laws for all four component lattices
//! and the product type.

use majic_types::{Dim, Intrinsic, Lattice, Range, Shape, Type};
use proptest::prelude::*;

fn arb_intrinsic() -> impl Strategy<Value = Intrinsic> {
    prop_oneof![
        Just(Intrinsic::Bottom),
        Just(Intrinsic::Bool),
        Just(Intrinsic::Int),
        Just(Intrinsic::Real),
        Just(Intrinsic::Complex),
        Just(Intrinsic::Str),
        Just(Intrinsic::Top),
    ]
}

fn arb_dim() -> impl Strategy<Value = Dim> {
    prop_oneof![(0u64..20).prop_map(Dim::Finite), Just(Dim::Inf)]
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (arb_dim(), arb_dim()).prop_map(|(rows, cols)| Shape { rows, cols })
}

fn arb_range() -> impl Strategy<Value = Range> {
    prop_oneof![
        Just(Range::bottom()),
        Just(Range::top()),
        (-100i64..100, 0i64..50).prop_map(|(lo, w)| Range::new(lo as f64, (lo + w) as f64)),
        (-100i64..100).prop_map(|lo| Range::new(lo as f64, f64::INFINITY)),
        (-100i64..100).prop_map(|hi| Range::new(f64::NEG_INFINITY, hi as f64)),
    ]
}

fn arb_type() -> impl Strategy<Value = Type> {
    (arb_intrinsic(), arb_shape(), arb_shape(), arb_range()).prop_map(
        |(intrinsic, a, b, range)| Type {
            intrinsic,
            min_shape: a.meet(&b),
            max_shape: a.join(&b),
            range,
        },
    )
}

macro_rules! lattice_laws {
    ($modname:ident, $strat:expr, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn join_commutative(a in $strat, b in $strat) {
                    prop_assert_eq!(a.join(&b), b.join(&a));
                }

                #[test]
                fn meet_commutative(a in $strat, b in $strat) {
                    prop_assert_eq!(a.meet(&b), b.meet(&a));
                }

                #[test]
                fn join_idempotent(a in $strat) {
                    prop_assert_eq!(a.join(&a), a);
                }

                #[test]
                fn join_associative(a in $strat, b in $strat, c in $strat) {
                    prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
                }

                #[test]
                fn join_is_upper_bound(a in $strat, b in $strat) {
                    let j = a.join(&b);
                    prop_assert!(a.le(&j));
                    prop_assert!(b.le(&j));
                }

                #[test]
                fn bottom_below_top(a in $strat) {
                    prop_assert!(<$ty as Lattice>::bottom().le(&a));
                    prop_assert!(a.le(&<$ty as Lattice>::top()));
                }

                #[test]
                fn le_consistent_with_join(a in $strat, b in $strat) {
                    // a ⊑ b  ⟺  a ⊔ b = b
                    prop_assert_eq!(a.le(&b), a.join(&b) == b);
                }
            }
        }
    };
}

lattice_laws!(intrinsic_laws, arb_intrinsic(), Intrinsic);
lattice_laws!(shape_laws, arb_shape(), Shape);
lattice_laws!(range_laws, arb_range(), Range);

mod type_laws {
    use super::*;

    proptest! {
        #[test]
        fn join_commutative(a in arb_type(), b in arb_type()) {
            prop_assert_eq!(a.join(&b), b.join(&a));
        }

        #[test]
        fn join_idempotent(a in arb_type()) {
            prop_assert_eq!(a.join(&a), a);
        }

        #[test]
        fn subtype_reflexive(a in arb_type()) {
            prop_assert!(a.is_subtype_of(&a));
        }

        #[test]
        fn subtype_transitive(a in arb_type(), b in arb_type(), c in arb_type()) {
            if a.is_subtype_of(&b) && b.is_subtype_of(&c) {
                prop_assert!(a.is_subtype_of(&c));
            }
        }

        #[test]
        fn distance_zero_on_self(a in arb_type()) {
            prop_assert_eq!(a.distance(&a), 0);
        }
    }
}

mod range_arith_props {
    use super::*;

    proptest! {
        /// Soundness of interval arithmetic: for values drawn inside the
        /// operand ranges, the concrete result lies inside the result range.
        #[test]
        fn add_sound(a_lo in -50i64..50, a_w in 0i64..20, b_lo in -50i64..50, b_w in 0i64..20,
                     ta in 0.0f64..=1.0, tb in 0.0f64..=1.0) {
            let ra = Range::new(a_lo as f64, (a_lo + a_w) as f64);
            let rb = Range::new(b_lo as f64, (b_lo + b_w) as f64);
            let x = ra.lo() + ta * (ra.hi() - ra.lo());
            let y = rb.lo() + tb * (rb.hi() - rb.lo());
            let sum = ra.add(rb);
            prop_assert!(Range::constant(x + y).le(&sum));
        }

        #[test]
        fn mul_sound(a_lo in -50i64..50, a_w in 0i64..20, b_lo in -50i64..50, b_w in 0i64..20,
                     ta in 0.0f64..=1.0, tb in 0.0f64..=1.0) {
            let ra = Range::new(a_lo as f64, (a_lo + a_w) as f64);
            let rb = Range::new(b_lo as f64, (b_lo + b_w) as f64);
            let x = ra.lo() + ta * (ra.hi() - ra.lo());
            let y = rb.lo() + tb * (rb.hi() - rb.lo());
            prop_assert!(Range::constant(x * y).le(&ra.mul(rb)));
        }

        #[test]
        fn widen_is_upper_bound(a in arb_range(), b in arb_range()) {
            let w = b.widen_from(a);
            prop_assert!(b.le(&w));
        }
    }
}
