//! Property-based tests of the lattice laws for all four component lattices
//! and the product type, driven by the in-repo [`majic_testkit`] runner.

use majic_testkit::{forall, Rng};
use majic_types::{Dim, Intrinsic, Lattice, Range, Shape, Type};

const CASES: u32 = 256;

fn arb_intrinsic(rng: &mut Rng) -> Intrinsic {
    *rng.choose(&[
        Intrinsic::Bottom,
        Intrinsic::Bool,
        Intrinsic::Int,
        Intrinsic::Real,
        Intrinsic::Complex,
        Intrinsic::Str,
        Intrinsic::Top,
    ])
}

fn arb_dim(rng: &mut Rng) -> Dim {
    if rng.below(5) == 0 {
        Dim::Inf
    } else {
        Dim::Finite(rng.range_u64(0, 20))
    }
}

fn arb_shape(rng: &mut Rng) -> Shape {
    Shape {
        rows: arb_dim(rng),
        cols: arb_dim(rng),
    }
}

fn arb_range(rng: &mut Rng) -> Range {
    match rng.below(5) {
        0 => Range::bottom(),
        1 => Range::top(),
        2 => {
            let lo = rng.range_i64(-100, 100);
            let w = rng.range_i64(0, 50);
            Range::new(lo as f64, (lo + w) as f64)
        }
        3 => Range::new(rng.range_i64(-100, 100) as f64, f64::INFINITY),
        _ => Range::new(f64::NEG_INFINITY, rng.range_i64(-100, 100) as f64),
    }
}

fn arb_type(rng: &mut Rng) -> Type {
    let (a, b) = (arb_shape(rng), arb_shape(rng));
    Type {
        intrinsic: arb_intrinsic(rng),
        min_shape: a.meet(&b),
        max_shape: a.join(&b),
        range: arb_range(rng),
    }
}

macro_rules! lattice_laws {
    ($modname:ident, $arb:ident, $ty:ty) => {
        mod $modname {
            use super::*;

            #[test]
            fn join_commutative() {
                forall(
                    concat!(stringify!($modname), "/join_commutative"),
                    CASES,
                    |rng| {
                        let (a, b) = ($arb(rng), $arb(rng));
                        assert_eq!(a.join(&b), b.join(&a));
                    },
                );
            }

            #[test]
            fn meet_commutative() {
                forall(
                    concat!(stringify!($modname), "/meet_commutative"),
                    CASES,
                    |rng| {
                        let (a, b) = ($arb(rng), $arb(rng));
                        assert_eq!(a.meet(&b), b.meet(&a));
                    },
                );
            }

            #[test]
            fn join_idempotent() {
                forall(
                    concat!(stringify!($modname), "/join_idempotent"),
                    CASES,
                    |rng| {
                        let a = $arb(rng);
                        assert_eq!(a.join(&a), a);
                    },
                );
            }

            #[test]
            fn join_associative() {
                forall(
                    concat!(stringify!($modname), "/join_associative"),
                    CASES,
                    |rng| {
                        let (a, b, c) = ($arb(rng), $arb(rng), $arb(rng));
                        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
                    },
                );
            }

            #[test]
            fn join_is_upper_bound() {
                forall(
                    concat!(stringify!($modname), "/join_is_upper_bound"),
                    CASES,
                    |rng| {
                        let (a, b) = ($arb(rng), $arb(rng));
                        let j = a.join(&b);
                        assert!(a.le(&j));
                        assert!(b.le(&j));
                    },
                );
            }

            #[test]
            fn bottom_below_top() {
                forall(
                    concat!(stringify!($modname), "/bottom_below_top"),
                    CASES,
                    |rng| {
                        let a = $arb(rng);
                        assert!(<$ty as Lattice>::bottom().le(&a));
                        assert!(a.le(&<$ty as Lattice>::top()));
                    },
                );
            }

            #[test]
            fn le_consistent_with_join() {
                // a ⊑ b  ⟺  a ⊔ b = b
                forall(
                    concat!(stringify!($modname), "/le_consistent_with_join"),
                    CASES,
                    |rng| {
                        let (a, b) = ($arb(rng), $arb(rng));
                        assert_eq!(a.le(&b), a.join(&b) == b);
                    },
                );
            }
        }
    };
}

lattice_laws!(intrinsic_laws, arb_intrinsic, Intrinsic);
lattice_laws!(shape_laws, arb_shape, Shape);
lattice_laws!(range_laws, arb_range, Range);

mod type_laws {
    use super::*;

    #[test]
    fn join_commutative() {
        forall("type/join_commutative", CASES, |rng| {
            let (a, b) = (arb_type(rng), arb_type(rng));
            assert_eq!(a.join(&b), b.join(&a));
        });
    }

    #[test]
    fn join_idempotent() {
        forall("type/join_idempotent", CASES, |rng| {
            let a = arb_type(rng);
            assert_eq!(a.join(&a), a);
        });
    }

    #[test]
    fn subtype_reflexive() {
        forall("type/subtype_reflexive", CASES, |rng| {
            let a = arb_type(rng);
            assert!(a.is_subtype_of(&a));
        });
    }

    #[test]
    fn subtype_transitive() {
        forall("type/subtype_transitive", CASES, |rng| {
            let (a, b, c) = (arb_type(rng), arb_type(rng), arb_type(rng));
            if a.is_subtype_of(&b) && b.is_subtype_of(&c) {
                assert!(a.is_subtype_of(&c));
            }
        });
    }

    #[test]
    fn distance_zero_on_self() {
        forall("type/distance_zero_on_self", CASES, |rng| {
            let a = arb_type(rng);
            assert_eq!(a.distance(&a), 0);
        });
    }
}

mod range_arith_props {
    use super::*;

    /// Soundness of interval arithmetic: for values drawn inside the
    /// operand ranges, the concrete result lies inside the result range.
    #[test]
    fn add_sound() {
        forall("range/add_sound", CASES, |rng| {
            let a_lo = rng.range_i64(-50, 50);
            let b_lo = rng.range_i64(-50, 50);
            let ra = Range::new(a_lo as f64, (a_lo + rng.range_i64(0, 20)) as f64);
            let rb = Range::new(b_lo as f64, (b_lo + rng.range_i64(0, 20)) as f64);
            let x = ra.lo() + rng.unit_f64() * (ra.hi() - ra.lo());
            let y = rb.lo() + rng.unit_f64() * (rb.hi() - rb.lo());
            assert!(Range::constant(x + y).le(&ra.add(rb)));
        });
    }

    #[test]
    fn mul_sound() {
        forall("range/mul_sound", CASES, |rng| {
            let a_lo = rng.range_i64(-50, 50);
            let b_lo = rng.range_i64(-50, 50);
            let ra = Range::new(a_lo as f64, (a_lo + rng.range_i64(0, 20)) as f64);
            let rb = Range::new(b_lo as f64, (b_lo + rng.range_i64(0, 20)) as f64);
            let x = ra.lo() + rng.unit_f64() * (ra.hi() - ra.lo());
            let y = rb.lo() + rng.unit_f64() * (rb.hi() - rb.lo());
            assert!(Range::constant(x * y).le(&ra.mul(rb)));
        });
    }

    #[test]
    fn widen_is_upper_bound() {
        forall("range/widen_is_upper_bound", CASES, |rng| {
            let (a, b) = (arb_range(rng), arb_range(rng));
            assert!(b.le(&b.widen_from(a)));
        });
    }
}
