//! The shape lattice `Ls` (paper §2.2).

use crate::Lattice;
use std::fmt;

/// One dimension extent: a natural number or `∞`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dim {
    /// A known finite extent.
    Finite(u64),
    /// Unbounded (`∞`).
    Inf,
}

impl Dim {
    /// Componentwise order: `Finite(a) ≤ Finite(b)` iff `a ≤ b`;
    /// everything is `≤ Inf`.
    pub fn le(self, other: Dim) -> bool {
        match (self, other) {
            (_, Dim::Inf) => true,
            (Dim::Inf, _) => false,
            (Dim::Finite(a), Dim::Finite(b)) => a <= b,
        }
    }

    /// Maximum of the two extents.
    pub fn max(self, other: Dim) -> Dim {
        if self.le(other) {
            other
        } else {
            self
        }
    }

    /// Minimum of the two extents.
    pub fn min(self, other: Dim) -> Dim {
        if self.le(other) {
            self
        } else {
            other
        }
    }

    /// The finite extent, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Dim::Finite(n) => Some(n),
            Dim::Inf => None,
        }
    }

    /// Saturating product of two extents (used for `numel`-style reasoning).
    pub fn saturating_mul(self, other: Dim) -> Dim {
        match (self, other) {
            (Dim::Finite(a), Dim::Finite(b)) => Dim::Finite(a.saturating_mul(b)),
            _ => Dim::Inf,
        }
    }
}

impl From<u64> for Dim {
    fn from(n: u64) -> Self {
        Dim::Finite(n)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Finite(n) => write!(f, "{n}"),
            Dim::Inf => f.write_str("∞"),
        }
    }
}

/// A two-dimensional (Fortran-like) shape `<rows, cols>`.
///
/// Ordered componentwise: `<a,b> ⊑ <c,d>` iff `a ≤ c` and `b ≤ d`.
/// `⊥ = <0,0>`, `⊤ = <∞,∞>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of rows.
    pub rows: Dim,
    /// Number of columns.
    pub cols: Dim,
}

impl Shape {
    /// An exact finite shape.
    pub fn new(rows: u64, cols: u64) -> Shape {
        Shape {
            rows: Dim::Finite(rows),
            cols: Dim::Finite(cols),
        }
    }

    /// The `1 × 1` scalar shape.
    pub fn scalar() -> Shape {
        Shape::new(1, 1)
    }

    /// The empty `0 × 0` shape (also the lattice bottom).
    pub fn empty() -> Shape {
        Shape::new(0, 0)
    }

    /// Is this exactly `1 × 1`?
    pub fn is_scalar(self) -> bool {
        self == Shape::scalar()
    }

    /// Both extents known?
    pub fn is_finite(self) -> bool {
        matches!((self.rows, self.cols), (Dim::Finite(_), Dim::Finite(_)))
    }

    /// Total element count when finite.
    pub fn numel(self) -> Option<u64> {
        Some(self.rows.finite()? * self.cols.finite()?)
    }

    /// Transposed shape.
    pub fn transpose(self) -> Shape {
        Shape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// A looseness score for the Manhattan distance heuristic: 0 for an
    /// exact finite shape, growing with unbounded extents.
    pub fn slack_vs(self, other: Shape) -> u64 {
        fn dim_slack(a: Dim, b: Dim) -> u64 {
            match (a, b) {
                (Dim::Finite(x), Dim::Finite(y)) => x.abs_diff(y),
                (Dim::Finite(_), Dim::Inf) | (Dim::Inf, Dim::Finite(_)) => 1000,
                (Dim::Inf, Dim::Inf) => 0,
            }
        }
        dim_slack(self.rows, other.rows) + dim_slack(self.cols, other.cols)
    }
}

impl Lattice for Shape {
    fn bottom() -> Self {
        Shape::empty()
    }

    fn top() -> Self {
        Shape {
            rows: Dim::Inf,
            cols: Dim::Inf,
        }
    }

    fn join(&self, other: &Self) -> Self {
        Shape {
            rows: self.rows.max(other.rows),
            cols: self.cols.max(other.cols),
        }
    }

    fn meet(&self, other: &Self) -> Self {
        Shape {
            rows: self.rows.min(other.rows),
            cols: self.cols.min(other.cols),
        }
    }

    fn le(&self, other: &Self) -> bool {
        self.rows.le(other.rows) && self.cols.le(other.cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn componentwise_order() {
        assert!(Shape::new(2, 3).le(&Shape::new(2, 3)));
        assert!(Shape::new(2, 3).le(&Shape::new(5, 3)));
        assert!(!Shape::new(2, 3).le(&Shape::new(1, 10)));
        assert!(Shape::new(2, 3).le(&Shape::top()));
        assert!(Shape::bottom().le(&Shape::new(0, 1)));
    }

    #[test]
    fn join_meet() {
        let a = Shape::new(2, 5);
        let b = Shape::new(4, 3);
        assert_eq!(a.join(&b), Shape::new(4, 5));
        assert_eq!(a.meet(&b), Shape::new(2, 3));
        assert_eq!(a.join(&Shape::top()), Shape::top());
        assert_eq!(a.meet(&Shape::bottom()), Shape::bottom());
    }

    #[test]
    fn scalar_and_numel() {
        assert!(Shape::scalar().is_scalar());
        assert!(!Shape::new(1, 2).is_scalar());
        assert_eq!(Shape::new(3, 4).numel(), Some(12));
        assert_eq!(Shape::top().numel(), None);
    }

    #[test]
    fn transpose_swaps() {
        assert_eq!(Shape::new(2, 3).transpose(), Shape::new(3, 2));
        assert_eq!(Shape::top().transpose(), Shape::top());
    }

    #[test]
    fn slack_scoring() {
        assert_eq!(Shape::new(3, 3).slack_vs(Shape::new(3, 3)), 0);
        assert_eq!(Shape::new(3, 3).slack_vs(Shape::new(3, 5)), 2);
        assert!(Shape::new(3, 3).slack_vs(Shape::top()) >= 2000);
    }

    #[test]
    fn dim_arith() {
        assert_eq!(
            Dim::Finite(3).saturating_mul(Dim::Finite(4)),
            Dim::Finite(12)
        );
        assert_eq!(Dim::Inf.saturating_mul(Dim::Finite(4)), Dim::Inf);
        assert_eq!(Dim::from(7u64), Dim::Finite(7));
    }
}
