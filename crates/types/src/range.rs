//! The value-range lattice `Ll` (paper §2.2), with interval arithmetic used
//! for the constant-propagation and subscript-check-removal extensions of
//! JIT type inference (paper §2.4).

use crate::Lattice;
use std::fmt;

/// An inclusive real interval `<lo, hi>`.
///
/// `⊥ = <nan, nan>` (no value), `⊤ = <−∞, ∞>` (any value). Ordered by
/// containment: `<a,b> ⊑ <c,d>` iff `<a,b> = ⊥` or (`c ≤ a` and `b ≤ d`).
///
/// Ranges are defined only for real-valued expressions; complex and string
/// expressions carry `⊤` (see [`crate::Intrinsic::has_range`]).
#[derive(Clone, Copy, Debug)]
pub struct Range {
    lo: f64,
    hi: f64,
}

impl Range {
    /// A well-formed interval. Returns `⊥` when `lo > hi` or either bound is
    /// NaN (the paper calls such ranges malformed).
    pub fn new(lo: f64, hi: f64) -> Range {
        if lo.is_nan() || hi.is_nan() || lo > hi {
            Range::bottom()
        } else {
            Range { lo, hi }
        }
    }

    /// The degenerate interval `<v, v>` of a known constant.
    pub fn constant(v: f64) -> Range {
        Range::new(v, v)
    }

    /// Lower bound (NaN iff `⊥`).
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper bound (NaN iff `⊥`).
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Is this the empty (`⊥`) range?
    pub fn is_bottom(self) -> bool {
        self.lo.is_nan()
    }

    /// Is this the full (`⊤`) range?
    pub fn is_top(self) -> bool {
        self.lo == f64::NEG_INFINITY && self.hi == f64::INFINITY
    }

    /// The constant value, if this range pins one down exactly.
    ///
    /// A real value is a constant if its lower and upper limits are equal
    /// (paper §2.4, "Constant propagation").
    pub fn as_constant(self) -> Option<f64> {
        (!self.is_bottom() && self.lo == self.hi && self.lo.is_finite()).then_some(self.lo)
    }

    /// Does every value in the range lie within `[lo, hi]`?
    ///
    /// `⊥` vacuously satisfies any bounds. This is the primitive behind
    /// subscript-check removal.
    pub fn within(self, lo: f64, hi: f64) -> bool {
        self.is_bottom() || (self.lo >= lo && self.hi <= hi)
    }

    /// Are all values known to be non-negative?
    pub fn is_nonnegative(self) -> bool {
        self.is_bottom() || self.lo >= 0.0
    }

    /// Interval addition.
    // Named like the `std::ops` methods on purpose: these are lattice
    // transfer functions invoked by name from the rule database, not
    // operator sugar, and `⊥`-propagation makes them unfit for the traits.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Range) -> Range {
        if self.is_bottom() || other.is_bottom() {
            return Range::bottom();
        }
        Range::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Interval subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Range) -> Range {
        if self.is_bottom() || other.is_bottom() {
            return Range::bottom();
        }
        Range::new(self.lo - other.hi, self.hi - other.lo)
    }

    /// Interval negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Range {
        if self.is_bottom() {
            return Range::bottom();
        }
        Range::new(-self.hi, -self.lo)
    }

    /// Interval multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Range) -> Range {
        if self.is_bottom() || other.is_bottom() {
            return Range::bottom();
        }
        let products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        // 0 * inf = NaN must widen, not poison.
        if products.iter().any(|p| p.is_nan()) {
            return Range::top();
        }
        let lo = products.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = products.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Range::new(lo, hi)
    }

    /// Interval division; widens to `⊤` when the divisor may be zero.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Range) -> Range {
        if self.is_bottom() || other.is_bottom() {
            return Range::bottom();
        }
        if other.lo <= 0.0 && other.hi >= 0.0 {
            return Range::top();
        }
        // Divide endpoints directly: going through reciprocals
        // (`a * (1/b)`) rounds twice, so the interval could exclude the
        // correctly-rounded runtime quotient (10/7 ≠ 10*(1/7) in f64).
        // Rounding is monotone, so endpoint quotients bound every
        // interior quotient even in floating point.
        let quotients = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        if quotients.iter().any(|q| q.is_nan()) {
            return Range::top();
        }
        let lo = quotients.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = quotients.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Range::new(lo, hi)
    }

    /// Interval power for integral known exponents; `⊤` otherwise.
    pub fn powi(self, n: f64) -> Range {
        if self.is_bottom() {
            return Range::bottom();
        }
        if n.fract() != 0.0 || !n.is_finite() {
            return Range::top();
        }
        // `as i32` saturates for |n| beyond i32, silently turning e.g.
        // x^1e10 into x^i32::MAX — a *different* function whose interval
        // would be unsound to trust. Widen instead.
        if n < f64::from(i32::MIN) || n > f64::from(i32::MAX) {
            return Range::top();
        }
        let n = n as i32;
        let a = self.lo.powi(n);
        let b = self.hi.powi(n);
        if n % 2 == 0 && self.lo < 0.0 && self.hi > 0.0 {
            Range::new(0.0, a.max(b))
        } else {
            Range::new(a.min(b), a.max(b))
        }
    }

    /// Pointwise floor.
    pub fn floor(self) -> Range {
        if self.is_bottom() {
            return self;
        }
        Range::new(self.lo.floor(), self.hi.floor())
    }

    /// Pointwise ceil.
    pub fn ceil(self) -> Range {
        if self.is_bottom() {
            return self;
        }
        Range::new(self.lo.ceil(), self.hi.ceil())
    }

    /// Pointwise round-half-away-from-zero (MATLAB `round`).
    pub fn round(self) -> Range {
        if self.is_bottom() {
            return self;
        }
        Range::new(self.lo.round(), self.hi.round())
    }

    /// Absolute value.
    pub fn abs(self) -> Range {
        if self.is_bottom() {
            return self;
        }
        if self.lo >= 0.0 {
            self
        } else if self.hi <= 0.0 {
            self.neg()
        } else {
            Range::new(0.0, (-self.lo).max(self.hi))
        }
    }

    /// Pointwise min.
    pub fn min_with(self, other: Range) -> Range {
        if self.is_bottom() || other.is_bottom() {
            return Range::bottom();
        }
        Range::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Pointwise max.
    pub fn max_with(self, other: Range) -> Range {
        if self.is_bottom() || other.is_bottom() {
            return Range::bottom();
        }
        Range::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Widen this range against an older one: any bound that moved jumps to
    /// infinity. Used by the inference engine's iteration cap to guarantee
    /// termination (paper §2.3: "caps the number of iterations").
    pub fn widen_from(self, older: Range) -> Range {
        if self.is_bottom() {
            return self;
        }
        if older.is_bottom() {
            return self;
        }
        let lo = if self.lo < older.lo {
            f64::NEG_INFINITY
        } else {
            self.lo
        };
        let hi = if self.hi > older.hi {
            f64::INFINITY
        } else {
            self.hi
        };
        Range::new(lo, hi)
    }

    /// A looseness score for the Manhattan distance heuristic.
    pub fn slack_vs(self, other: Range) -> u64 {
        fn bound_slack(a: f64, b: f64) -> u64 {
            if a == b {
                0
            } else if a.is_finite() && b.is_finite() {
                1
            } else {
                10
            }
        }
        if self.is_bottom() && other.is_bottom() {
            return 0;
        }
        if self.is_bottom() || other.is_bottom() {
            return 20;
        }
        bound_slack(self.lo, other.lo) + bound_slack(self.hi, other.hi)
    }
}

impl PartialEq for Range {
    fn eq(&self, other: &Self) -> bool {
        (self.is_bottom() && other.is_bottom()) || (self.lo == other.lo && self.hi == other.hi)
    }
}

impl Eq for Range {}

impl Lattice for Range {
    fn bottom() -> Self {
        Range {
            lo: f64::NAN,
            hi: f64::NAN,
        }
    }

    fn top() -> Self {
        Range {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    fn join(&self, other: &Self) -> Self {
        if self.is_bottom() {
            return *other;
        }
        if other.is_bottom() {
            return *self;
        }
        Range::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    fn meet(&self, other: &Self) -> Self {
        if self.is_bottom() || other.is_bottom() {
            return Range::bottom();
        }
        Range::new(self.lo.max(other.lo), self.hi.min(other.hi))
    }

    fn le(&self, other: &Self) -> bool {
        self.is_bottom() || (!other.is_bottom() && other.lo <= self.lo && self.hi <= other.hi)
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_bottom() {
            f.write_str("<nan,nan>")
        } else {
            write!(f, "<{},{}>", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powi_huge_exponent_widens_to_top() {
        // `n as i32` saturates for |n| > i32::MAX; the interval for
        // x^i32::MAX is not the interval for x^1e10, so powi must widen
        // rather than silently analyze a different function.
        let x = Range::new(0.5, 2.0);
        assert_eq!(x.powi(1e10), Range::top());
        assert_eq!(x.powi(-1e10), Range::top());
        assert_eq!(x.powi(4e9), Range::top());
        // Boundary values that do fit stay precise.
        assert!(x.powi(2.0).le(&Range::new(0.25, 4.0)));
        assert_eq!(
            Range::constant(1.0).powi(f64::from(i32::MAX)),
            Range::constant(1.0)
        );
    }

    #[test]
    fn malformed_ranges_collapse_to_bottom() {
        assert!(Range::new(2.0, 1.0).is_bottom());
        assert!(Range::new(f64::NAN, 1.0).is_bottom());
    }

    #[test]
    fn containment_order() {
        let small = Range::new(2.0, 3.0);
        let big = Range::new(0.0, 10.0);
        assert!(small.le(&big));
        assert!(!big.le(&small));
        assert!(Range::bottom().le(&small));
        assert!(small.le(&Range::top()));
        assert!(!small.le(&Range::bottom()));
    }

    #[test]
    fn constant_division_matches_runtime_rounding() {
        // Found by the differential fuzzer: 10/7 computed as 10*(1/7)
        // rounds twice and lands one ulp below the runtime quotient,
        // so the inferred "constant" excluded the actual value.
        let q = Range::constant(10.0).div(Range::constant(7.0));
        assert_eq!(q, Range::constant(10.0 / 7.0));
        // Sign-definite interval endpoints still bound interior pairs.
        let r = Range::new(1.0, 2.0).div(Range::new(4.0, 8.0));
        assert_eq!(r, Range::new(1.0 / 8.0, 2.0 / 4.0));
    }

    #[test]
    fn join_is_hull_meet_is_intersection() {
        let a = Range::new(0.0, 5.0);
        let b = Range::new(3.0, 9.0);
        assert_eq!(a.join(&b), Range::new(0.0, 9.0));
        assert_eq!(a.meet(&b), Range::new(3.0, 5.0));
        let c = Range::new(7.0, 8.0);
        assert!(a.meet(&c).is_bottom());
    }

    #[test]
    fn constants() {
        assert_eq!(Range::constant(4.0).as_constant(), Some(4.0));
        assert_eq!(Range::new(1.0, 2.0).as_constant(), None);
        assert_eq!(Range::top().as_constant(), None);
    }

    #[test]
    fn arithmetic() {
        let a = Range::new(1.0, 2.0);
        let b = Range::new(10.0, 20.0);
        assert_eq!(a.add(b), Range::new(11.0, 22.0));
        assert_eq!(b.sub(a), Range::new(8.0, 19.0));
        assert_eq!(a.mul(b), Range::new(10.0, 40.0));
        assert_eq!(a.neg(), Range::new(-2.0, -1.0));
        assert_eq!(Range::new(-3.0, 2.0).abs(), Range::new(0.0, 3.0));
    }

    #[test]
    fn division_by_possibly_zero_widens() {
        let a = Range::new(1.0, 2.0);
        assert!(a.div(Range::new(-1.0, 1.0)).is_top());
        assert_eq!(a.div(Range::new(2.0, 4.0)), Range::new(0.25, 1.0));
    }

    #[test]
    fn power() {
        assert_eq!(Range::new(2.0, 3.0).powi(2.0), Range::new(4.0, 9.0));
        assert_eq!(Range::new(-2.0, 3.0).powi(2.0), Range::new(0.0, 9.0));
        assert!(Range::new(2.0, 3.0).powi(0.5).is_top());
    }

    #[test]
    fn subscript_bounds() {
        assert!(Range::new(1.0, 100.0).within(1.0, 100.0));
        assert!(!Range::new(0.0, 100.0).within(1.0, 100.0));
        assert!(Range::bottom().within(1.0, 1.0));
    }

    #[test]
    fn widening_jumps_moved_bounds_to_infinity() {
        let older = Range::new(1.0, 10.0);
        let grown = Range::new(1.0, 11.0);
        let w = grown.widen_from(older);
        assert_eq!(w.lo(), 1.0);
        assert_eq!(w.hi(), f64::INFINITY);
        // A stable range is left alone.
        assert_eq!(older.widen_from(older), older);
    }

    #[test]
    fn rounding() {
        assert_eq!(Range::new(1.2, 2.8).floor(), Range::new(1.0, 2.0));
        assert_eq!(Range::new(1.2, 2.8).ceil(), Range::new(2.0, 3.0));
        assert_eq!(Range::new(1.2, 2.8).round(), Range::new(1.0, 3.0));
    }
}
