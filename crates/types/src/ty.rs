//! The product type `T = Li × Ls × Ls × Ll` (paper §2.2).

use crate::{Dim, Intrinsic, Lattice, Range, Shape};
use std::fmt;

/// A MaJIC type: intrinsic type, lower/upper shape bounds, and value range.
///
/// The two shape components track lower as well as upper bounds of the shape
/// descriptor ("minshape"/"maxshape" in the paper's Figure 3); shape is
/// *exactly* known when the two coincide, which enables full unrolling of
/// small-vector operations. Range information generalizes constant
/// propagation and drives subscript-check removal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Type {
    /// Intrinsic type component (`Li`).
    pub intrinsic: Intrinsic,
    /// Lower bound of the shape (`Ls`, first copy).
    pub min_shape: Shape,
    /// Upper bound of the shape (`Ls`, second copy).
    pub max_shape: Shape,
    /// Value-range component (`Ll`).
    pub range: Range,
}

impl Type {
    /// A scalar of the given intrinsic type with unknown value.
    pub fn scalar(intrinsic: Intrinsic) -> Type {
        Type {
            intrinsic,
            min_shape: Shape::scalar(),
            max_shape: Shape::scalar(),
            range: Range::top(),
        }
    }

    /// The exact type of a real scalar constant. Integral values are typed
    /// `int` (MATLAB stores them in doubles; integrality is what the
    /// compiler exploits).
    pub fn constant(v: f64) -> Type {
        let intrinsic = if v.fract() == 0.0 && v.is_finite() {
            Intrinsic::Int
        } else {
            Intrinsic::Real
        };
        Type {
            intrinsic,
            min_shape: Shape::scalar(),
            max_shape: Shape::scalar(),
            range: Range::constant(v),
        }
    }

    /// The type of a logical scalar constant.
    pub fn bool_constant(b: bool) -> Type {
        Type {
            intrinsic: Intrinsic::Bool,
            min_shape: Shape::scalar(),
            max_shape: Shape::scalar(),
            range: Range::constant(if b { 1.0 } else { 0.0 }),
        }
    }

    /// A matrix of exactly known shape and unknown values.
    pub fn matrix(intrinsic: Intrinsic, rows: u64, cols: u64) -> Type {
        let s = Shape::new(rows, cols);
        Type {
            intrinsic,
            min_shape: s,
            max_shape: s,
            range: Range::top(),
        }
    }

    /// A string (char row vector) of unknown length.
    pub fn string() -> Type {
        Type {
            intrinsic: Intrinsic::Str,
            min_shape: Shape::new(1, 0),
            max_shape: Shape {
                rows: Dim::Finite(1),
                cols: Dim::Inf,
            },
            range: Range::top(),
        }
    }

    /// Is the shape exactly determined (lower and upper bounds equal and
    /// finite)?
    pub fn exact_shape(&self) -> Option<Shape> {
        (self.min_shape == self.max_shape && self.max_shape.is_finite()).then_some(self.max_shape)
    }

    /// Is this certainly a scalar (`1 × 1`)?
    pub fn is_scalar(&self) -> bool {
        self.exact_shape().is_some_and(Shape::is_scalar)
    }

    /// Could this be a scalar? (`1 × 1` lies between the bounds.)
    pub fn may_be_scalar(&self) -> bool {
        self.min_shape.le(&Shape::scalar()) && Shape::scalar().le(&self.max_shape)
    }

    /// The constant value, if this type pins one down.
    pub fn as_constant(&self) -> Option<f64> {
        self.is_scalar().then(|| self.range.as_constant())?
    }

    /// Force the shape to be exactly `shape` (both bounds).
    pub fn with_exact_shape(mut self, shape: Shape) -> Type {
        self.min_shape = shape;
        self.max_shape = shape;
        self
    }

    /// Replace the range component.
    pub fn with_range(mut self, range: Range) -> Type {
        self.range = range;
        self
    }

    /// Replace the intrinsic component, widening the range to `⊤` when the
    /// new intrinsic type does not track one (complex, string, `⊤`).
    pub fn with_intrinsic(mut self, intrinsic: Intrinsic) -> Type {
        self.intrinsic = intrinsic;
        if !intrinsic.has_range() {
            self.range = Range::top();
        }
        self
    }

    /// The *safety* order used by the repository's signature check
    /// (paper §2.2.1): an invocation with actual types `Q` may execute code
    /// compiled for signature types `T` iff `Q ⊑ T` in this order.
    ///
    /// Componentwise: intrinsic, max-shape and range are covariant
    /// (`⊑`); the min-shape is *contravariant* (code compiled assuming the
    /// array has at least `T.min_shape` elements — e.g. with subscript
    /// checks removed — must receive a value at least that large).
    pub fn is_subtype_of(&self, other: &Type) -> bool {
        self.intrinsic.le(&other.intrinsic)
            && self.max_shape.le(&other.max_shape)
            && other.min_shape.le(&self.min_shape)
            && self.range.le(&other.range)
    }

    /// Manhattan-like distance between an invocation type and a candidate
    /// signature type (paper §2.2.1): the sum of per-lattice slack. Used to
    /// pick the *best* safe candidate; smaller means more specialized.
    pub fn distance(&self, other: &Type) -> u64 {
        let intr = u64::from(self.intrinsic.level().abs_diff(other.intrinsic.level()));
        let minshape = self.min_shape.slack_vs(other.min_shape);
        let maxshape = self.max_shape.slack_vs(other.max_shape);
        let range = self.range.slack_vs(other.range);
        intr * 10_000 + minshape + maxshape + range
    }

    /// Widen against an older value of the fixpoint iteration (see
    /// [`Range::widen_from`]); shape upper bounds that grew jump to `∞` and
    /// lower bounds that shrank jump to `<0,0>`.
    pub fn widen_from(&self, older: &Type) -> Type {
        let max_shape = Shape {
            rows: if older.max_shape.rows.le(self.max_shape.rows)
                && self.max_shape.rows != older.max_shape.rows
            {
                Dim::Inf
            } else {
                self.max_shape.rows
            },
            cols: if older.max_shape.cols.le(self.max_shape.cols)
                && self.max_shape.cols != older.max_shape.cols
            {
                Dim::Inf
            } else {
                self.max_shape.cols
            },
        };
        let min_shape = Shape {
            rows: if self.min_shape.rows.le(older.min_shape.rows)
                && self.min_shape.rows != older.min_shape.rows
            {
                Dim::Finite(0)
            } else {
                self.min_shape.rows
            },
            cols: if self.min_shape.cols.le(older.min_shape.cols)
                && self.min_shape.cols != older.min_shape.cols
            {
                Dim::Finite(0)
            } else {
                self.min_shape.cols
            },
        };
        Type {
            intrinsic: self.intrinsic,
            min_shape,
            max_shape,
            range: self.range.widen_from(older.range),
        }
    }
}

impl Default for Type {
    /// The default type is `⊥` — the type of nothing.
    fn default() -> Self {
        Type::bottom()
    }
}

impl Lattice for Type {
    fn bottom() -> Self {
        Type {
            intrinsic: Intrinsic::Bottom,
            min_shape: Shape::bottom(),
            max_shape: Shape::bottom(),
            range: Range::bottom(),
        }
    }

    fn top() -> Self {
        Type {
            intrinsic: Intrinsic::Top,
            min_shape: Shape::bottom(),
            max_shape: Shape::top(),
            range: Range::top(),
        }
    }

    fn join(&self, other: &Self) -> Self {
        // ⊥-typed states arise on not-yet-reached dataflow paths; joining
        // with one must not degrade the other side's guarantees.
        match (
            self.intrinsic == Intrinsic::Bottom,
            other.intrinsic == Intrinsic::Bottom,
        ) {
            (true, false) => return *other,
            (false, true) => return *self,
            _ => {}
        }
        Type {
            intrinsic: self.intrinsic.join(&other.intrinsic),
            // Lower bounds combine with meet: after a merge we only know the
            // array is at least as large as the smaller guarantee.
            min_shape: self.min_shape.meet(&other.min_shape),
            max_shape: self.max_shape.join(&other.max_shape),
            range: self.range.join(&other.range),
        }
    }

    fn meet(&self, other: &Self) -> Self {
        Type {
            intrinsic: self.intrinsic.meet(&other.intrinsic),
            min_shape: self.min_shape.join(&other.min_shape),
            max_shape: self.max_shape.meet(&other.max_shape),
            range: self.range.meet(&other.range),
        }
    }

    fn le(&self, other: &Self) -> bool {
        self.is_subtype_of(other)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.min_shape == self.max_shape {
            write!(
                f,
                "{} shape={} limits={}",
                self.intrinsic, self.max_shape, self.range
            )
        } else {
            write!(
                f,
                "{} minshape={} maxshape={} limits={}",
                self.intrinsic, self.min_shape, self.max_shape, self.range
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_classification() {
        assert_eq!(Type::constant(3.0).intrinsic, Intrinsic::Int);
        assert_eq!(Type::constant(3.5).intrinsic, Intrinsic::Real);
        assert_eq!(Type::constant(3.0).as_constant(), Some(3.0));
    }

    #[test]
    fn figure3_signature_ladder() {
        // The progressively less specialized signatures of the paper's
        // Figure 3: each is a subtype of the next.
        let sig1 = Type::scalar(Intrinsic::Int); // itype=int shape=scalar
        let sig2 = Type::scalar(Intrinsic::Real); // itype=real shape=scalar
        let sig3 = Type::matrix(Intrinsic::Real, 3, 1); // real <3,1>
        let mut sig3_loose = sig3;
        sig3_loose.max_shape = Shape::new(3, 3);
        sig3_loose.min_shape = Shape::new(1, 1);
        let sig4 = Type::top().with_intrinsic(Intrinsic::Complex); // cplx ⊤s

        assert!(sig1.is_subtype_of(&sig2));
        assert!(!sig2.is_subtype_of(&sig1));
        // A 3x1 exact real matrix fits the loose <1,1>..<3,3> bound.
        assert!(sig3.is_subtype_of(&sig3_loose));
        // And a real scalar fits the complex-top signature.
        let mut cplx_top = sig4;
        cplx_top.min_shape = Shape::bottom();
        cplx_top.max_shape = Shape::top();
        assert!(sig2.with_range(Range::top()).is_subtype_of(&cplx_top));
    }

    #[test]
    fn min_shape_is_contravariant_for_safety() {
        // Code compiled assuming at least a 10x1 vector (subscript checks
        // removed for indices up to 10) must not run on a 5x1 vector.
        let mut t = Type::matrix(Intrinsic::Real, 10, 1);
        t.max_shape = Shape::top();
        let small = Type::matrix(Intrinsic::Real, 5, 1);
        let big = Type::matrix(Intrinsic::Real, 20, 1);
        assert!(!small.is_subtype_of(&t));
        assert!(big.is_subtype_of(&t));
    }

    #[test]
    fn join_merges_control_flow() {
        let a = Type::constant(1.0);
        let b = Type::constant(5.0);
        let j = a.join(&b);
        assert_eq!(j.intrinsic, Intrinsic::Int);
        assert_eq!(j.range, Range::new(1.0, 5.0));
        assert!(j.is_scalar());
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let a = Type::matrix(Intrinsic::Real, 2, 2);
        assert_eq!(Type::bottom().join(&a), a);
        assert_eq!(a.join(&Type::bottom()), a);
    }

    #[test]
    fn distance_prefers_specialized_code() {
        let q = Type::constant(3.0);
        let int_scalar = Type::scalar(Intrinsic::Int);
        let real_scalar = Type::scalar(Intrinsic::Real);
        let cplx_any = Type::top().with_intrinsic(Intrinsic::Complex);
        assert!(q.distance(&int_scalar) < q.distance(&real_scalar));
        assert!(q.distance(&real_scalar) < q.distance(&cplx_any));
    }

    #[test]
    fn everything_fits_top() {
        for t in [
            Type::constant(2.5),
            Type::matrix(Intrinsic::Complex, 4, 7),
            Type::string(),
            Type::scalar(Intrinsic::Bool),
        ] {
            assert!(t.is_subtype_of(&Type::top()), "{t} ⊑ ⊤");
        }
    }

    #[test]
    fn widening_stabilizes_growth() {
        let older = Type::matrix(Intrinsic::Real, 3, 1);
        let mut grown = Type::matrix(Intrinsic::Real, 4, 1);
        grown.min_shape = Shape::new(2, 1);
        let w = grown.widen_from(&older);
        assert_eq!(w.max_shape.rows, Dim::Inf);
        assert_eq!(w.min_shape.rows, Dim::Finite(0));
        assert_eq!(w.max_shape.cols, Dim::Finite(1));
    }

    #[test]
    fn string_type_tracks_no_range() {
        // Strings do not track ranges; they carry ⊤ so that the subtype
        // check stays purely componentwise.
        assert!(Type::string().range.is_top());
        assert!(!Type::string().is_subtype_of(&Type::scalar(Intrinsic::Real)));
    }
}
