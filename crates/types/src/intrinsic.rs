//! The intrinsic-type lattice `Li` (paper §2.2).

use crate::Lattice;
use std::fmt;

/// Intrinsic type of a MATLAB expression.
///
/// The lattice is a diamond: the numeric chain
/// `Bottom ⊑ Bool ⊑ Int ⊑ Real ⊑ Complex ⊑ Top` plus the side chain
/// `Bottom ⊑ Str ⊑ Top`. `Str` is incomparable with every numeric element.
///
/// Note that `Int` here means "a double holding an integral value" — MATLAB
/// stores everything in doubles; the compiler exploits integrality for index
/// arithmetic and loop counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Intrinsic {
    /// `⊥` — no value / unreachable.
    #[default]
    Bottom,
    /// Logical (0/1) values.
    Bool,
    /// Integral real values.
    Int,
    /// Real (double) values.
    Real,
    /// Complex values.
    Complex,
    /// Character strings.
    Str,
    /// `⊤` — unknown; could be anything.
    Top,
}

impl Intrinsic {
    /// Height of the element within its chain, used by the Manhattan
    /// distance heuristic of the code repository.
    ///
    /// `Bottom = 0`, `Bool = 1`, `Int = 2`, `Real = 3`, `Complex = 4`,
    /// `Top = 5`; `Str` sits at level 1 of its own chain but is scored 4 so
    /// that matching a string against `Top` costs something.
    pub fn level(self) -> u32 {
        match self {
            Intrinsic::Bottom => 0,
            Intrinsic::Bool => 1,
            Intrinsic::Int => 2,
            Intrinsic::Real => 3,
            Intrinsic::Complex => 4,
            Intrinsic::Str => 4,
            Intrinsic::Top => 5,
        }
    }

    /// Is this a numeric element (`Bool`, `Int`, `Real` or `Complex`)?
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            Intrinsic::Bool | Intrinsic::Int | Intrinsic::Real | Intrinsic::Complex
        )
    }

    /// Does a value of this intrinsic type admit a (real) value range?
    ///
    /// The paper defines ranges only for real numbers; strings and complex
    /// expressions have no associated range.
    pub fn has_range(self) -> bool {
        matches!(self, Intrinsic::Bool | Intrinsic::Int | Intrinsic::Real)
    }

    /// The smallest numeric element at or above both operands, used by
    /// arithmetic transfer functions (`int + real = real`, …).
    ///
    /// Returns `Top` if either operand is `Str` or `Top`.
    pub fn numeric_join(self, other: Intrinsic) -> Intrinsic {
        if self == Intrinsic::Str || other == Intrinsic::Str {
            return Intrinsic::Top;
        }
        self.join(&other)
    }
}

impl Lattice for Intrinsic {
    fn bottom() -> Self {
        Intrinsic::Bottom
    }

    fn top() -> Self {
        Intrinsic::Top
    }

    fn join(&self, other: &Self) -> Self {
        use Intrinsic::*;
        match (*self, *other) {
            (a, b) if a == b => a,
            (Bottom, x) | (x, Bottom) => x,
            (Top, _) | (_, Top) => Top,
            (Str, _) | (_, Str) => Top, // Str vs numeric: only common upper bound is ⊤
            (a, b) => {
                // Both on the numeric chain: totally ordered by level.
                if a.level() >= b.level() {
                    a
                } else {
                    b
                }
            }
        }
    }

    fn meet(&self, other: &Self) -> Self {
        use Intrinsic::*;
        match (*self, *other) {
            (a, b) if a == b => a,
            (Top, x) | (x, Top) => x,
            (Bottom, _) | (_, Bottom) => Bottom,
            (Str, _) | (_, Str) => Bottom,
            (a, b) => {
                if a.level() <= b.level() {
                    a
                } else {
                    b
                }
            }
        }
    }

    fn le(&self, other: &Self) -> bool {
        use Intrinsic::*;
        match (*self, *other) {
            (a, b) if a == b => true,
            (Bottom, _) => true,
            (_, Top) => true,
            (Top, _) => false,
            (_, Bottom) => false,
            (Str, _) | (_, Str) => false,
            (a, b) => a.level() <= b.level(),
        }
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Intrinsic::Bottom => "⊥",
            Intrinsic::Bool => "bool",
            Intrinsic::Int => "int",
            Intrinsic::Real => "real",
            Intrinsic::Complex => "cplx",
            Intrinsic::Str => "strg",
            Intrinsic::Top => "⊤",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Intrinsic; 7] = [
        Intrinsic::Bottom,
        Intrinsic::Bool,
        Intrinsic::Int,
        Intrinsic::Real,
        Intrinsic::Complex,
        Intrinsic::Str,
        Intrinsic::Top,
    ];

    #[test]
    fn numeric_chain_is_totally_ordered() {
        use Intrinsic::*;
        assert!(Bool.le(&Int));
        assert!(Int.le(&Real));
        assert!(Real.le(&Complex));
        assert!(Complex.le(&Top));
        assert!(!Real.le(&Int));
    }

    #[test]
    fn string_is_incomparable_with_numerics() {
        use Intrinsic::*;
        assert!(!Str.le(&Real));
        assert!(!Real.le(&Str));
        assert!(Str.le(&Top));
        assert!(Bottom.le(&Str));
        assert_eq!(Str.join(&Real), Top);
        assert_eq!(Str.meet(&Real), Bottom);
    }

    #[test]
    fn join_is_least_upper_bound() {
        for a in ALL {
            for b in ALL {
                let j = a.join(&b);
                assert!(a.le(&j), "{a} ⊑ {a}⊔{b}");
                assert!(b.le(&j), "{b} ⊑ {a}⊔{b}");
                // Minimality: no strictly smaller upper bound exists.
                for c in ALL {
                    if a.le(&c) && b.le(&c) {
                        assert!(j.le(&c), "join {a}⊔{b}={j} not minimal vs {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn meet_is_greatest_lower_bound() {
        for a in ALL {
            for b in ALL {
                let m = a.meet(&b);
                assert!(m.le(&a));
                assert!(m.le(&b));
                for c in ALL {
                    if c.le(&a) && c.le(&b) {
                        assert!(c.le(&m));
                    }
                }
            }
        }
    }

    #[test]
    fn order_is_reflexive_antisymmetric_transitive() {
        for a in ALL {
            assert!(a.le(&a));
            for b in ALL {
                if a.le(&b) && b.le(&a) {
                    assert_eq!(a, b);
                }
                for c in ALL {
                    if a.le(&b) && b.le(&c) {
                        assert!(a.le(&c));
                    }
                }
            }
        }
    }

    #[test]
    fn numeric_join_promotes_through_the_chain() {
        use Intrinsic::*;
        assert_eq!(Int.numeric_join(Real), Real);
        assert_eq!(Bool.numeric_join(Bool), Bool);
        assert_eq!(Real.numeric_join(Complex), Complex);
        assert_eq!(Real.numeric_join(Str), Top);
    }

    #[test]
    fn range_admission() {
        assert!(Intrinsic::Real.has_range());
        assert!(Intrinsic::Int.has_range());
        assert!(!Intrinsic::Complex.has_range());
        assert!(!Intrinsic::Str.has_range());
    }
}
