//! Type signatures (paper §2.2.1).

use crate::Type;
use std::fmt;

/// The type signature of a compiled function: one [`Type`] per formal
/// parameter.
///
/// The code repository keys compiled versions by signature. An invocation
/// with actual parameter types `Q = {Q1 … Qn}` may safely execute code
/// compiled for `T = {T1 … Tn}` iff `Qi ⊑ Ti` for all `i`; among safe
/// candidates the repository picks the one with the smallest
/// Manhattan-like [`distance`](Signature::distance).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Signature {
    params: Vec<Type>,
}

impl Signature {
    /// A signature from parameter types.
    pub fn new(params: Vec<Type>) -> Signature {
        Signature { params }
    }

    /// The empty (zero-parameter) signature.
    pub fn empty() -> Signature {
        Signature { params: Vec::new() }
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Parameter types.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// Safety check: may an invocation with these actual types run code
    /// compiled for `self`?
    ///
    /// Arity must match exactly and every actual type must be a subtype of
    /// the corresponding formal type.
    pub fn admits(&self, actuals: &Signature) -> bool {
        self.params.len() == actuals.params.len()
            && actuals
                .params
                .iter()
                .zip(&self.params)
                .all(|(q, t)| q.is_subtype_of(t))
    }

    /// Manhattan-like distance between an invocation and this signature:
    /// the sum of per-parameter type distances. `None` if arities differ.
    pub fn distance(&self, actuals: &Signature) -> Option<u64> {
        if self.params.len() != actuals.params.len() {
            return None;
        }
        Some(
            actuals
                .params
                .iter()
                .zip(&self.params)
                .map(|(q, t)| q.distance(t))
                .sum(),
        )
    }
}

impl FromIterator<Type> for Signature {
    fn from_iter<I: IntoIterator<Item = Type>>(iter: I) -> Self {
        Signature::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, t) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Intrinsic, Lattice};

    #[test]
    fn admits_requires_matching_arity() {
        let sig = Signature::new(vec![Type::scalar(Intrinsic::Real)]);
        let inv = Signature::new(vec![Type::constant(1.0), Type::constant(2.0)]);
        assert!(!sig.admits(&inv));
        assert_eq!(sig.distance(&inv), None);
    }

    #[test]
    fn admits_checks_every_parameter() {
        let sig = Signature::new(vec![
            Type::scalar(Intrinsic::Real),
            Type::matrix(Intrinsic::Real, 3, 3),
        ]);
        let good = Signature::new(vec![
            Type::constant(1.5),
            Type::matrix(Intrinsic::Int, 3, 3),
        ]);
        let bad = Signature::new(vec![
            Type::constant(1.5),
            Type::matrix(Intrinsic::Real, 4, 3),
        ]);
        assert!(sig.admits(&good));
        assert!(!sig.admits(&bad));
    }

    #[test]
    fn distance_orders_candidates() {
        let inv = Signature::new(vec![Type::constant(3.0)]);
        let tight = Signature::new(vec![Type::scalar(Intrinsic::Int)]);
        let loose = Signature::new(vec![Type::top()]);
        assert!(tight.admits(&inv));
        assert!(loose.admits(&inv));
        assert!(tight.distance(&inv).unwrap() < loose.distance(&inv).unwrap());
    }

    #[test]
    fn empty_signature_admits_empty_invocation() {
        assert!(Signature::empty().admits(&Signature::empty()));
        assert_eq!(Signature::empty().arity(), 0);
    }

    #[test]
    fn collects_from_iterator() {
        let sig: Signature = [Type::constant(1.0), Type::constant(2.0)]
            .into_iter()
            .collect();
        assert_eq!(sig.arity(), 2);
    }
}
