//! The MaJIC type system.
//!
//! MaJIC's notion of a type (paper §2.2) is the Cartesian product of several
//! lattices:
//!
//! * [`Intrinsic`] — the finite intrinsic-type lattice
//!   `⊥ ⊑ bool ⊑ int ⊑ real ⊑ cplx ⊑ ⊤` with the side chain `⊥ ⊑ strg ⊑ ⊤`;
//! * [`Shape`] — pairs `(rows, cols)` ordered componentwise, with
//!   `⊥ = <0,0>` and `⊤ = <∞,∞>`. A [`Type`] carries **two** shapes, a lower
//!   and an upper bound ("minshape"/"maxshape" in the paper's Figure 3);
//! * [`Range`] — real intervals `<lo, hi>` ordered by containment, with
//!   `⊥ = <nan,nan>` and `⊤ = <−∞,∞>`.
//!
//! The product `T = Li × Ls × Ls × Ll` is [`Type`]. A list of parameter
//! types forms a [`Signature`]; signatures drive the code repository's
//! safety check (`Qi ⊑ Ti` for every actual parameter) and its
//! Manhattan-distance best-match heuristic (paper §2.2.1).
//!
//! The [`wire`] module provides the zero-dependency binary codecs these
//! types use when the repository persists compiled code across sessions
//! (`docs/CACHE_FORMAT.md`).
//!
//! # Examples
//!
//! ```
//! use majic_types::{Intrinsic, Type};
//!
//! // The exact type of the scalar constant 3.0 …
//! let q = Type::constant(3.0);
//! // … is a subtype of "any real scalar" …
//! let t = Type::scalar(Intrinsic::Real);
//! assert!(q.is_subtype_of(&t));
//! // … but not the other way around.
//! assert!(!t.is_subtype_of(&q));
//! ```

#![deny(missing_docs)]

mod intrinsic;
mod range;
mod shape;
mod signature;
mod ty;
pub mod wire;

pub use intrinsic::Intrinsic;
pub use range::Range;
pub use shape::{Dim, Shape};
pub use signature::Signature;
pub use ty::Type;

/// A lattice with join (least upper bound), meet (greatest lower bound) and
/// the induced partial order.
///
/// Implemented by all four component lattices and by [`Type`] itself
/// (pointwise). `le` is the partial order `⊑`; `a.le(b)` reads "a is at or
/// below b".
pub trait Lattice: Sized {
    /// The least element `⊥`.
    fn bottom() -> Self;
    /// The greatest element `⊤`.
    fn top() -> Self;
    /// Least upper bound `a ⊔ b`.
    fn join(&self, other: &Self) -> Self;
    /// Greatest lower bound `a ⊓ b`.
    fn meet(&self, other: &Self) -> Self;
    /// Partial order `self ⊑ other`.
    fn le(&self, other: &Self) -> bool;
}
