//! Zero-dependency binary wire format used by the persistent repository
//! cache (see `docs/CACHE_FORMAT.md` for the byte-level specification).
//!
//! The format is deliberately primitive: little-endian fixed-width
//! integers, IEEE-754 bit patterns for floats, length-prefixed UTF-8
//! strings, and one-byte tags for enums. Every `decode` is total — a
//! malformed byte stream produces a [`WireError`], never a panic and
//! never an oversized allocation — because the repository cache treats
//! any decoding failure as a cold start.
//!
//! Encoding is *canonical*: a value has exactly one byte representation,
//! so `encode ∘ decode ∘ encode` is bitwise idempotent. The cache's
//! round-trip property tests rely on this.

use crate::{Dim, Intrinsic, Range, Shape, Signature, Type};

/// Version of the primitive wire layer. Bump on any change to the
/// primitive encodings or to the `majic-types` codecs below; the
/// compiler build fingerprint embeds it, so a bump invalidates every
/// existing cache file.
pub const WIRE_VERSION: u32 = 1;

/// A decoding failure: the byte stream does not describe a value.
///
/// Deliberately coarse — callers fall back to a cold start, they do not
/// dispatch on the reason — but carries a human-readable context string
/// for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What was being decoded when the stream turned out malformed.
    pub context: &'static str,
}

impl WireError {
    /// A decoding error tagged with what was being decoded.
    pub fn new(context: &'static str) -> WireError {
        WireError { context }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire data: {}", self.context)
    }
}

impl std::error::Error for WireError {}

/// Result of a decode step.
pub type WireResult<T> = Result<T, WireError>;

/// An append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Writer {
    bytes: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an `f64` as its IEEE-754 bit pattern (NaN payloads are
    /// preserved exactly).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Write a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with a `u32` length prefix.
    pub fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.bytes.extend_from_slice(b);
    }
}

/// A bounds-checked byte cursor for decoding.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Has every byte been consumed? Decoders use this to reject
    /// trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::new(context));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a bool; any byte other than 0 or 1 is malformed.
    pub fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::new("bool")),
        }
    }

    /// Read a length-prefixed UTF-8 string. The declared length is
    /// validated against the remaining input before any allocation.
    pub fn str(&mut self) -> WireResult<String> {
        let len = self.u32()? as usize;
        let b = self.take(len, "str bytes")?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("str utf-8"))
    }

    /// Read a `u32`-length-prefixed byte blob.
    pub fn blob(&mut self) -> WireResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len, "blob bytes")
    }

    /// Read a sequence count and validate it against the remaining
    /// input, assuming each element occupies at least `min_elem_bytes`.
    /// Guards `Vec::with_capacity` against attacker-controlled lengths.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> WireResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::new("seq length exceeds input"));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Codecs for the type lattice (the repository's guard metadata).
// ---------------------------------------------------------------------

/// Encode an [`Intrinsic`] (one tag byte, declaration order).
pub fn encode_intrinsic(w: &mut Writer, v: Intrinsic) {
    w.u8(match v {
        Intrinsic::Bottom => 0,
        Intrinsic::Bool => 1,
        Intrinsic::Int => 2,
        Intrinsic::Real => 3,
        Intrinsic::Complex => 4,
        Intrinsic::Str => 5,
        Intrinsic::Top => 6,
    });
}

/// Decode an [`Intrinsic`].
pub fn decode_intrinsic(r: &mut Reader<'_>) -> WireResult<Intrinsic> {
    Ok(match r.u8()? {
        0 => Intrinsic::Bottom,
        1 => Intrinsic::Bool,
        2 => Intrinsic::Int,
        3 => Intrinsic::Real,
        4 => Intrinsic::Complex,
        5 => Intrinsic::Str,
        6 => Intrinsic::Top,
        _ => return Err(WireError::new("intrinsic tag")),
    })
}

/// Encode a [`Dim`]: tag 0 + extent for finite, tag 1 for `∞`.
pub fn encode_dim(w: &mut Writer, v: Dim) {
    match v {
        Dim::Finite(n) => {
            w.u8(0);
            w.u64(n);
        }
        Dim::Inf => w.u8(1),
    }
}

/// Decode a [`Dim`].
pub fn decode_dim(r: &mut Reader<'_>) -> WireResult<Dim> {
    Ok(match r.u8()? {
        0 => Dim::Finite(r.u64()?),
        1 => Dim::Inf,
        _ => return Err(WireError::new("dim tag")),
    })
}

/// Encode a [`Shape`] (rows then cols).
pub fn encode_shape(w: &mut Writer, v: Shape) {
    encode_dim(w, v.rows);
    encode_dim(w, v.cols);
}

/// Decode a [`Shape`].
pub fn decode_shape(r: &mut Reader<'_>) -> WireResult<Shape> {
    Ok(Shape {
        rows: decode_dim(r)?,
        cols: decode_dim(r)?,
    })
}

/// Encode a [`Range`] as its two bounds' bit patterns (`⊥` is the NaN
/// pair produced by [`Lattice::bottom`](crate::Lattice::bottom)).
pub fn encode_range(w: &mut Writer, v: Range) {
    w.f64(v.lo());
    w.f64(v.hi());
}

/// Decode a [`Range`]. Reconstructed through [`Range::new`], so a
/// malformed pair (`lo > hi`, stray NaN) canonicalizes to `⊥` exactly
/// as it would at construction time.
pub fn decode_range(r: &mut Reader<'_>) -> WireResult<Range> {
    let lo = r.f64()?;
    let hi = r.f64()?;
    Ok(Range::new(lo, hi))
}

/// Encode a [`Type`] (intrinsic, min shape, max shape, range).
pub fn encode_type(w: &mut Writer, v: &Type) {
    encode_intrinsic(w, v.intrinsic);
    encode_shape(w, v.min_shape);
    encode_shape(w, v.max_shape);
    encode_range(w, v.range);
}

/// Decode a [`Type`].
pub fn decode_type(r: &mut Reader<'_>) -> WireResult<Type> {
    Ok(Type {
        intrinsic: decode_intrinsic(r)?,
        min_shape: decode_shape(r)?,
        max_shape: decode_shape(r)?,
        range: decode_range(r)?,
    })
}

/// Encode a [`Signature`] as a counted sequence of parameter types.
pub fn encode_signature(w: &mut Writer, v: &Signature) {
    w.u32(v.params().len() as u32);
    for t in v.params() {
        encode_type(w, t);
    }
}

/// Decode a [`Signature`].
pub fn decode_signature(r: &mut Reader<'_>) -> WireResult<Signature> {
    let n = r.seq_len(1)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(decode_type(r)?);
    }
    Ok(Signature::new(params))
}

/// FNV-1a 64-bit hash — the cache's checksum and source-hash algorithm
/// (tiny, dependency-free, and stable across platforms; this is an
/// integrity check against corruption, not a cryptographic MAC).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lattice;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("héllo");
        w.blob(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.blob().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.str("hello world");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // A 4 GiB string length with 2 bytes of payload must fail fast.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).str().is_err());
        assert!(Reader::new(&bytes).seq_len(1).is_err());
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(decode_intrinsic(&mut Reader::new(&[9])).is_err());
        assert!(decode_dim(&mut Reader::new(&[2])).is_err());
        assert!(Reader::new(&[3]).bool().is_err());
    }

    #[test]
    fn type_codec_round_trips_bitwise() {
        let cases = [
            Type::bottom(),
            Type::top(),
            Type::constant(3.25),
            Type::matrix(Intrinsic::Complex, 4, 7),
            Type::string(),
            Type::scalar(Intrinsic::Bool).with_range(Range::new(0.0, 1.0)),
        ];
        for t in &cases {
            let mut w = Writer::new();
            encode_type(&mut w, t);
            let first = w.into_bytes();
            let mut r = Reader::new(&first);
            let back = decode_type(&mut r).unwrap();
            assert!(r.is_empty());
            let mut w2 = Writer::new();
            encode_type(&mut w2, &back);
            assert_eq!(first, w2.into_bytes(), "canonical encoding for {t}");
        }
    }

    #[test]
    fn signature_codec_round_trips() {
        let sig = Signature::new(vec![Type::constant(1.0), Type::top()]);
        let mut w = Writer::new();
        encode_signature(&mut w, &sig);
        let bytes = w.into_bytes();
        let back = decode_signature(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the on-disk format depends on this exact function.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"majic"), {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for &b in b"majic" {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        });
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
