//! The optimizing backend's IR passes.
//!
//! The paper's speculative pipeline leans on a slow, aggressive backend
//! (the platform C/Fortran compiler at `-O`-max). These passes are our
//! equivalent: constant folding, local common-subexpression elimination,
//! loop-invariant code motion and dead-code elimination over the pure
//! `F`-register subset of the IR. They are deliberately *not* run by the
//! JIT pipeline — "no loop optimizations or instruction scheduling are
//! performed" there (§2.6) — which is exactly the JIT-vs-optimized gap
//! the evaluation measures.

use crate::inst::{FBinOp, FUnOp, Function, Inst, Reg, Terminator, VarBinding};
use std::collections::HashMap;

/// Which passes to run.
#[derive(Clone, Copy, Debug)]
pub struct PassOptions {
    /// Constant folding.
    pub const_fold: bool,
    /// Local common-subexpression elimination.
    pub cse: bool,
    /// Loop-invariant code motion.
    pub licm: bool,
    /// Dead-code elimination.
    pub dce: bool,
}

impl PassOptions {
    /// Everything on (the optimizing backend).
    pub fn all() -> PassOptions {
        PassOptions {
            const_fold: true,
            cse: true,
            licm: true,
            dce: true,
        }
    }

    /// Everything off (the JIT backend).
    pub fn none() -> PassOptions {
        PassOptions {
            const_fold: false,
            cse: false,
            licm: false,
            dce: false,
        }
    }
}

/// Run the selected passes to a fixpoint (two rounds are enough for the
/// pass set's interactions: folding exposes CSE, CSE exposes DCE).
pub fn optimize(f: &mut Function, opts: PassOptions) {
    for _ in 0..2 {
        if opts.const_fold {
            const_fold(f);
        }
        if opts.cse {
            local_cse(f);
        }
        if opts.licm {
            licm(f);
        }
        if opts.dce {
            dce(f);
        }
    }
}

fn eval_fbin(op: FBinOp, a: f64, b: f64) -> f64 {
    match op {
        FBinOp::Add => a + b,
        FBinOp::Sub => a - b,
        FBinOp::Mul => a * b,
        FBinOp::Div => a / b,
        FBinOp::Pow => a.powf(b),
        FBinOp::Atan2 => a.atan2(b),
        FBinOp::Min => {
            if a.is_nan() {
                b
            } else if b.is_nan() || a < b {
                a
            } else {
                b
            }
        }
        FBinOp::Max => {
            if a.is_nan() {
                b
            } else if b.is_nan() || a > b {
                a
            } else {
                b
            }
        }
        FBinOp::Mod => {
            if b == 0.0 {
                a
            } else {
                a - (a / b).floor() * b
            }
        }
        FBinOp::Rem => {
            if b == 0.0 {
                f64::NAN
            } else {
                a - (a / b).trunc() * b
            }
        }
    }
}

fn eval_fun(op: FUnOp, s: f64) -> f64 {
    match op {
        FUnOp::Neg => -s,
        FUnOp::Abs => s.abs(),
        FUnOp::Sqrt => s.sqrt(),
        FUnOp::Sin => s.sin(),
        FUnOp::Cos => s.cos(),
        FUnOp::Tan => s.tan(),
        FUnOp::Asin => s.asin(),
        FUnOp::Acos => s.acos(),
        FUnOp::Atan => s.atan(),
        FUnOp::Exp => s.exp(),
        FUnOp::Log => s.ln(),
        FUnOp::Log10 => s.log10(),
        FUnOp::Floor => s.floor(),
        FUnOp::Ceil => s.ceil(),
        FUnOp::Round => s.round(),
        FUnOp::Fix => s.trunc(),
        FUnOp::Sign => {
            if s > 0.0 {
                1.0
            } else if s < 0.0 {
                -1.0
            } else {
                0.0
            }
        }
        FUnOp::Not => {
            if s == 0.0 {
                1.0
            } else {
                0.0
            }
        }
    }
}

/// Fold constant `F` computations, block-locally.
pub fn const_fold(f: &mut Function) {
    for block in &mut f.blocks {
        let mut known: HashMap<Reg, f64> = HashMap::new();
        for inst in &mut block.insts {
            let replacement = match &*inst {
                Inst::FConst { d, v } => {
                    known.insert(*d, *v);
                    None
                }
                Inst::FMov { d, s } => known.get(s).copied().map(|v| (*d, v)),
                Inst::FBin { op, d, a, b } => match (known.get(a), known.get(b)) {
                    (Some(&x), Some(&y)) => Some((*d, eval_fbin(*op, x, y))),
                    _ => None,
                },
                Inst::FUn { op, d, s } => known.get(s).map(|&x| (*d, eval_fun(*op, x))),
                Inst::FCmp { op, d, a, b } => match (known.get(a), known.get(b)) {
                    (Some(&x), Some(&y)) => {
                        let t = match op {
                            crate::CmpOp::Lt => x < y,
                            crate::CmpOp::Le => x <= y,
                            crate::CmpOp::Gt => x > y,
                            crate::CmpOp::Ge => x >= y,
                            crate::CmpOp::Eq => x == y,
                            crate::CmpOp::Ne => x != y,
                        };
                        Some((*d, if t { 1.0 } else { 0.0 }))
                    }
                    _ => None,
                },
                other => {
                    if let Some(d) = other.f_dest() {
                        known.remove(&d);
                    }
                    None
                }
            };
            if let Some((d, v)) = replacement {
                known.insert(d, v);
                *inst = Inst::FConst { d, v };
            } else if let Some(d) = inst.f_dest() {
                if !matches!(inst, Inst::FConst { .. }) {
                    known.remove(&d);
                }
            }
        }
    }
}

/// Expression key for local CSE.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ExprKey {
    Bin(FBinOp, Reg, Reg),
    Un(FUnOp, Reg),
    Cmp(crate::CmpOp, Reg, Reg),
    Const(u64),
}

/// Local (per-block) common-subexpression elimination on pure `F` ops.
pub fn local_cse(f: &mut Function) {
    for block in &mut f.blocks {
        let mut available: HashMap<ExprKey, Reg> = HashMap::new();
        for inst in &mut block.insts {
            let key = match inst {
                Inst::FBin { op, a, b, .. } => Some(ExprKey::Bin(*op, *a, *b)),
                Inst::FUn { op, s, .. } => Some(ExprKey::Un(*op, *s)),
                Inst::FCmp { op, a, b, .. } => Some(ExprKey::Cmp(*op, *a, *b)),
                Inst::FConst { v, .. } => Some(ExprKey::Const(v.to_bits())),
                _ => None,
            };
            let dest = inst.f_dest();
            if let (Some(key), Some(d)) = (key, dest) {
                if let Some(&prev) = available.get(&key) {
                    if prev != d {
                        *inst = Inst::FMov { d, s: prev };
                    }
                    // The redefinition of d invalidates entries built on d.
                    available.retain(|k, v| *v != d && !key_uses(k, d));
                    if !key_uses(&key, d) {
                        available.insert(key, if prev == d { d } else { prev });
                    }
                    continue;
                }
                available.retain(|k, v| *v != d && !key_uses(k, d));
                if !key_uses(&key, d) {
                    available.insert(key, d);
                }
            } else if let Some(d) = dest {
                available.retain(|k, v| *v != d && !key_uses(k, d));
            }
        }
    }
}

fn key_uses(k: &ExprKey, r: Reg) -> bool {
    match k {
        ExprKey::Bin(_, a, b) | ExprKey::Cmp(_, a, b) => *a == r || *b == r,
        ExprKey::Un(_, s) => *s == r,
        ExprKey::Const(_) => false,
    }
}

/// Loop-invariant code motion: move pure `F` instructions whose inputs
/// are not defined anywhere in the loop — and whose destination is
/// defined exactly once in the whole function — into the preheader.
pub fn licm(f: &mut Function) {
    // Whole-function def counts.
    let mut def_count: HashMap<Reg, u32> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.f_dest() {
                *def_count.entry(d).or_default() += 1;
            }
        }
    }
    for p in &f.params {
        if let VarBinding::F(r) = p {
            *def_count.entry(*r).or_default() += 1;
        }
    }

    let loops = f.loops.clone();
    for lp in &loops {
        loop {
            // Defs inside the loop.
            let mut in_loop_defs: HashMap<Reg, u32> = HashMap::new();
            for &bid in &lp.blocks {
                for i in &f.blocks[bid.index()].insts {
                    if let Some(d) = i.f_dest() {
                        *in_loop_defs.entry(d).or_default() += 1;
                    }
                }
            }
            // Find one hoistable instruction.
            let mut found: Option<(usize, usize)> = None;
            'search: for &bid in &lp.blocks {
                for (k, i) in f.blocks[bid.index()].insts.iter().enumerate() {
                    if !i.pure_f() {
                        continue;
                    }
                    let Some(d) = i.f_dest() else { continue };
                    if def_count.get(&d).copied().unwrap_or(0) != 1 {
                        continue;
                    }
                    if i.f_sources().iter().any(|s| in_loop_defs.contains_key(s)) {
                        continue;
                    }
                    found = Some((bid.index(), k));
                    break 'search;
                }
            }
            match found {
                Some((bi, k)) => {
                    let inst = f.blocks[bi].insts.remove(k);
                    f.blocks[lp.preheader.index()].insts.push(inst);
                }
                None => break,
            }
        }
    }
}

/// Dead-code elimination: drop pure `F`/`C` instructions whose result is
/// never used.
pub fn dce(f: &mut Function) {
    loop {
        let mut used: HashMap<Reg, u32> = HashMap::new();
        let mut bump = |r: Reg| *used.entry(r).or_default() += 1;
        for b in &f.blocks {
            for i in &b.insts {
                for s in i.f_sources() {
                    bump(s);
                }
            }
            if let Terminator::Branch { cond, .. } = &b.term {
                bump(*cond);
            }
        }
        for o in &f.outputs {
            if let VarBinding::F(r) = o {
                bump(*r);
            }
        }
        // C-class uses keep their F feeders alive through CMake, which
        // f_sources already covers; C registers themselves are kept
        // conservatively (C code is rare and cheap).
        let mut removed = false;
        for b in &mut f.blocks {
            b.insts.retain(|i| {
                let dead = i.pure_f()
                    && i.f_dest()
                        .is_some_and(|d| used.get(&d).copied().unwrap_or(0) == 0);
                if dead {
                    removed = true;
                }
                !dead
            });
        }
        if !removed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Block, BlockId, LoopInfo};

    fn func(blocks: Vec<Block>) -> Function {
        Function {
            name: "t".into(),
            f_regs: 32,
            blocks,
            ..Function::default()
        }
    }

    fn bin(op: FBinOp, d: u32, a: u32, b: u32) -> Inst {
        Inst::FBin {
            op,
            d: Reg(d),
            a: Reg(a),
            b: Reg(b),
        }
    }

    fn konst(d: u32, v: f64) -> Inst {
        Inst::FConst { d: Reg(d), v }
    }

    #[test]
    fn const_folding_collapses_chains() {
        let mut f = func(vec![Block {
            insts: vec![
                konst(0, 2.0),
                konst(1, 3.0),
                bin(FBinOp::Mul, 2, 0, 1),
                bin(FBinOp::Add, 3, 2, 2),
            ],
            term: Terminator::Return,
        }]);
        const_fold(&mut f);
        assert_eq!(f.blocks[0].insts[2], konst(2, 6.0));
        assert_eq!(f.blocks[0].insts[3], konst(3, 12.0));
    }

    #[test]
    fn cse_reuses_common_subexpressions() {
        let mut f = func(vec![Block {
            insts: vec![
                bin(FBinOp::Add, 2, 0, 1),
                bin(FBinOp::Add, 3, 0, 1), // same expr
            ],
            term: Terminator::Return,
        }]);
        local_cse(&mut f);
        assert_eq!(
            f.blocks[0].insts[1],
            Inst::FMov {
                d: Reg(3),
                s: Reg(2)
            }
        );
    }

    #[test]
    fn cse_respects_redefinition() {
        let mut f = func(vec![Block {
            insts: vec![
                bin(FBinOp::Add, 2, 0, 1),
                konst(0, 9.0), // redefines an input
                bin(FBinOp::Add, 3, 0, 1),
            ],
            term: Terminator::Return,
        }]);
        local_cse(&mut f);
        // Second add must NOT become a move.
        assert_eq!(f.blocks[0].insts[2], bin(FBinOp::Add, 3, 0, 1));
    }

    #[test]
    fn dce_removes_unused_results() {
        let mut f = func(vec![Block {
            insts: vec![
                konst(0, 1.0),
                bin(FBinOp::Add, 1, 0, 0), // dead
                konst(2, 5.0),             // kept: feeds the output
            ],
            term: Terminator::Return,
        }]);
        f.outputs = vec![VarBinding::F(Reg(2))];
        dce(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert_eq!(f.blocks[0].insts[0], konst(2, 5.0));
    }

    #[test]
    fn dce_keeps_branch_conditions() {
        let mut f = func(vec![
            Block {
                insts: vec![konst(0, 1.0)],
                term: Terminator::Branch {
                    cond: Reg(0),
                    then_bb: BlockId(1),
                    else_bb: BlockId(1),
                },
            },
            Block {
                insts: vec![],
                term: Terminator::Return,
            },
        ]);
        dce(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn licm_hoists_invariant_computation() {
        // Block 0: preheader; block 1: loop header/body with an invariant
        // mul (r3 = r0*r1, inputs defined outside).
        let mut f = func(vec![
            Block {
                insts: vec![konst(0, 2.0), konst(1, 3.0), konst(4, 0.0)],
                term: Terminator::Jump(BlockId(1)),
            },
            Block {
                insts: vec![
                    bin(FBinOp::Mul, 3, 0, 1), // invariant
                    bin(FBinOp::Add, 4, 4, 3), // varying accumulator
                ],
                term: Terminator::Branch {
                    cond: Reg(4),
                    then_bb: BlockId(1),
                    else_bb: BlockId(2),
                },
            },
            Block {
                insts: vec![],
                term: Terminator::Return,
            },
        ]);
        f.loops = vec![LoopInfo {
            preheader: BlockId(0),
            header: BlockId(1),
            blocks: vec![BlockId(1)],
        }];
        f.outputs = vec![VarBinding::F(Reg(4))];
        licm(&mut f);
        // The mul moved to block 0; the accumulator stayed.
        assert!(f.blocks[0].insts.contains(&bin(FBinOp::Mul, 3, 0, 1)));
        assert_eq!(f.blocks[1].insts.len(), 1);
    }

    #[test]
    fn licm_leaves_multiply_defined_registers() {
        // r3 is defined both inside and outside the loop: not hoistable.
        let mut f = func(vec![
            Block {
                insts: vec![konst(0, 2.0), konst(3, 0.0)],
                term: Terminator::Jump(BlockId(1)),
            },
            Block {
                insts: vec![bin(FBinOp::Mul, 3, 0, 0)],
                term: Terminator::Branch {
                    cond: Reg(3),
                    then_bb: BlockId(1),
                    else_bb: BlockId(2),
                },
            },
            Block {
                insts: vec![],
                term: Terminator::Return,
            },
        ]);
        f.loops = vec![LoopInfo {
            preheader: BlockId(0),
            header: BlockId(1),
            blocks: vec![BlockId(1)],
        }];
        licm(&mut f);
        assert_eq!(f.blocks[1].insts.len(), 1, "must not hoist");
    }

    #[test]
    fn optimize_pipeline_composes() {
        let mut f = func(vec![Block {
            insts: vec![
                konst(0, 2.0),
                konst(1, 3.0),
                bin(FBinOp::Mul, 2, 0, 1),
                bin(FBinOp::Mul, 3, 0, 1), // CSE → then folded/dead
                bin(FBinOp::Add, 4, 2, 3),
            ],
            term: Terminator::Return,
        }]);
        f.outputs = vec![VarBinding::F(Reg(4))];
        optimize(&mut f, PassOptions::all());
        // Everything folds to constants; the output def remains.
        let last = f.blocks[0].insts.last().unwrap();
        assert_eq!(*last, konst(4, 12.0));
    }
}
