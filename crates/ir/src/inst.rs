//! Instruction and function definitions.

use majic_runtime::builtins::Builtin;
use std::fmt;

/// A register number. Virtual before register allocation (unbounded),
/// physical afterwards (within the machine's register-file size, or a
/// scratch register fed by spill code). `F` and `C` registers number
/// independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// The register number as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A frame slot holding a whole runtime `Value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot(pub u32);

impl Slot {
    /// The slot number as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A basic-block id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary operations on `F` registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FBinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a ^ b`
    Pow,
    /// `atan2(a, b)`
    Atan2,
    /// `min(a, b)` (NaN-ignoring, MATLAB style)
    Min,
    /// `max(a, b)`
    Max,
    /// `mod(a, b)` (sign of divisor)
    Mod,
    /// `rem(a, b)` (sign of dividend)
    Rem,
}

/// Unary operations on `F` registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FUnOp {
    /// `-a`
    Neg,
    /// `|a|`
    Abs,
    /// `√a`
    Sqrt,
    /// `sin a`
    Sin,
    /// `cos a`
    Cos,
    /// `tan a`
    Tan,
    /// `asin a`
    Asin,
    /// `acos a`
    Acos,
    /// `atan a`
    Atan,
    /// `eᵃ`
    Exp,
    /// `ln a`
    Log,
    /// `log₁₀ a`
    Log10,
    /// `⌊a⌋`
    Floor,
    /// `⌈a⌉`
    Ceil,
    /// `round a`
    Round,
    /// `trunc a` (MATLAB `fix`)
    Fix,
    /// `sign a`
    Sign,
    /// logical not (`a == 0` → 1.0 else 0.0)
    Not,
}

/// Comparison operators (results are `F` values 0.0/1.0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `~=`
    Ne,
}

/// Binary operations on `C` registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CBinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a ^ b`
    Pow,
}

/// Unary operations on `C` registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CUnOp {
    /// `-a`
    Neg,
    /// complex conjugate
    Conj,
    /// `√a`
    Sqrt,
    /// `eᵃ`
    Exp,
    /// `ln a`
    Log,
    /// `sin a`
    Sin,
    /// `cos a`
    Cos,
}

/// An argument to a generic (polymorphic) operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// A whole-value frame slot.
    Slot(Slot),
    /// A real scalar in an `F` register (boxed on use).
    F(Reg),
    /// A complex scalar in a `C` register (boxed on use).
    C(Reg),
    /// A real scalar in the `F` spill area (introduced by allocation).
    FSpill(u32),
    /// A complex scalar in the `C` spill area (introduced by allocation).
    CSpill(u32),
    /// A string literal.
    Str(String),
    /// A bare `:` subscript marker (only meaningful to indexing ops).
    Colon,
}

/// Generic operations: calls into the polymorphic runtime library
/// (`majic_runtime::ops` / builtins) — the `mlfPlus`-style fallback of
/// the paper's Figure 3.
#[derive(Clone, Debug, PartialEq)]
pub enum GenOp {
    /// `dst = op(args…)` for a binary operator named by its MATLAB
    /// spelling (`+`, `*`, `.^`, `<`, `&`, …).
    Binary(&'static str),
    /// Unary operator (`-`, `~`).
    Unary(&'static str),
    /// Transpose; `true` = conjugating `'`.
    Transpose(bool),
    /// `start : step? : stop` (argument count decides).
    Range,
    /// Matrix literal: `rows` gives the element count of each row.
    BuildMatrix {
        /// Elements per literal row.
        rows: Vec<u32>,
    },
    /// Indexed read: `dst = base(args…)`.
    IndexGet,
    /// Indexed write: `base(args…) = value` (last argument); `oversize`
    /// enables growth headroom.
    IndexSet {
        /// Allocate ~10% slack on resize (paper §2.6.1).
        oversize: bool,
    },
    /// Builtin call.
    CallBuiltin(Builtin),
    /// User-function call, dispatched through the engine.
    CallUser(String),
    /// Resolve a possibly-undefined symbol at runtime (the paper's
    /// "ambiguous symbols … deferred until runtime"): if the slot is
    /// defined use it, else call the builtin/function of that name.
    ResolveAmbiguous(String),
    /// `dst = alpha*A*x + beta*y` — the fused dgemv selection (§2.6.1).
    Gemv,
    /// Allocate a fresh real matrix of the given shape filled with zeros
    /// (pre-allocation of small temporaries, §2.6.1).
    AllocReal {
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// Ensure the destination slot holds a real matrix of exactly this
    /// shape, reusing the existing buffer when it already does (the
    /// `static tmp2[3]` of the paper's Figure 3 — unrolled stores then
    /// overwrite every element in place, with no per-iteration
    /// allocation).
    EnsureReal {
        /// Rows.
        rows: u32,
        /// Columns.
        cols: u32,
    },
    /// Display `name = value` to the session transcript (unsuppressed
    /// statement results).
    Display(String),
}

/// One IR instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Inst {
    // --- F class ---
    /// `d ← v`
    FConst {
        /// Destination.
        d: Reg,
        /// Constant value.
        v: f64,
    },
    /// `d ← s`
    FMov {
        /// Destination.
        d: Reg,
        /// Source.
        s: Reg,
    },
    /// `d ← a op b`
    FBin {
        /// Operation.
        op: FBinOp,
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d ← op s`
    FUn {
        /// Operation.
        op: FUnOp,
        /// Destination.
        d: Reg,
        /// Operand.
        s: Reg,
    },
    /// `d ← (a op b) ? 1.0 : 0.0`
    FCmp {
        /// Comparison.
        op: CmpOp,
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Spill reload `d ← spill[slot]` (inserted by the allocator).
    FSpillLoad {
        /// Destination register.
        d: Reg,
        /// Spill-area index.
        slot: u32,
    },
    /// Spill store `spill[slot] ← s` (inserted by the allocator).
    FSpillStore {
        /// Spill-area index.
        slot: u32,
        /// Source register.
        s: Reg,
    },

    // --- C class ---
    /// `d ← re + im·i`
    CConst {
        /// Destination.
        d: Reg,
        /// Real part.
        re: f64,
        /// Imaginary part.
        im: f64,
    },
    /// `d ← s`
    CMov {
        /// Destination.
        d: Reg,
        /// Source.
        s: Reg,
    },
    /// `d ← a op b`
    CBin {
        /// Operation.
        op: CBinOp,
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d ← op s`
    CUn {
        /// Operation.
        op: CUnOp,
        /// Destination.
        d: Reg,
        /// Operand.
        s: Reg,
    },
    /// `d(F) ← |s|`
    CAbs {
        /// Destination (`F` class).
        d: Reg,
        /// Operand (`C` class).
        s: Reg,
    },
    /// `d(F) ← Re s` / `Im s`
    CPart {
        /// Destination (`F` class).
        d: Reg,
        /// Operand (`C` class).
        s: Reg,
        /// `false` = real part, `true` = imaginary part.
        imag: bool,
    },
    /// `d(C) ← re + im·i` from `F` registers.
    CMake {
        /// Destination (`C` class).
        d: Reg,
        /// Real part (`F` class).
        re: Reg,
        /// Imaginary part (`F` class).
        im: Reg,
    },
    /// Spill reload for `C` registers.
    CSpillLoad {
        /// Destination register.
        d: Reg,
        /// Spill-area index.
        slot: u32,
    },
    /// Spill store for `C` registers.
    CSpillStore {
        /// Spill-area index.
        slot: u32,
        /// Source register.
        s: Reg,
    },

    // --- array accesses (the subscript-check-removal surface) ---
    /// `d(F) ← arr(i)` or `arr(i, j)`; 1-based f64 indices in `F` regs.
    /// `checked` validates integrality and bounds (MATLAB semantics);
    /// unchecked accesses were proven safe by type inference.
    ALoadF {
        /// Destination (`F`).
        d: Reg,
        /// Array slot (must hold a real matrix).
        arr: Slot,
        /// Row (or linear) index.
        i: Reg,
        /// Column index for 2-D accesses.
        j: Option<Reg>,
        /// Emit the MATLAB subscript check?
        checked: bool,
    },
    /// `arr(i[, j]) ← v(F)`, growing the array when a checked store
    /// overflows (with optional oversizing).
    AStoreF {
        /// Array slot.
        arr: Slot,
        /// Row (or linear) index.
        i: Reg,
        /// Column index for 2-D accesses.
        j: Option<Reg>,
        /// Value to store.
        v: Reg,
        /// Emit the check (and growth path)?
        checked: bool,
        /// Oversize on growth?
        oversize: bool,
    },
    /// Complex-array variants of the above.
    ALoadC {
        /// Destination (`C`).
        d: Reg,
        /// Array slot (complex matrix).
        arr: Slot,
        /// Row (or linear) index.
        i: Reg,
        /// Column index.
        j: Option<Reg>,
        /// Checked?
        checked: bool,
    },
    /// Store a complex scalar into a complex array.
    AStoreC {
        /// Array slot.
        arr: Slot,
        /// Row (or linear) index.
        i: Reg,
        /// Column index.
        j: Option<Reg>,
        /// Value (`C`).
        v: Reg,
        /// Checked?
        checked: bool,
        /// Oversize on growth?
        oversize: bool,
    },
    /// Unchecked constant-linear-index load (small-vector unrolling).
    ALoadConstF {
        /// Destination.
        d: Reg,
        /// Array slot.
        arr: Slot,
        /// 0-based linear index.
        lin: u32,
    },
    /// Unchecked constant-linear-index store.
    AStoreConstF {
        /// Array slot.
        arr: Slot,
        /// 0-based linear index.
        lin: u32,
        /// Value.
        v: Reg,
    },

    // --- slot/register traffic ---
    /// Box an `F` scalar into a slot (`Value::scalar`).
    FToSlot {
        /// Destination slot.
        slot: Slot,
        /// Source register.
        s: Reg,
    },
    /// Box an `F` scalar known to hold 0/1 into a slot as a *logical*
    /// scalar (`Value::Bool`). Emitted where the inferred type of the
    /// boxed value is `bool`, so compiled code preserves the logical
    /// class the interpreter produces for comparisons — observable via
    /// logical indexing and function results.
    FToSlotBool {
        /// Destination slot.
        slot: Slot,
        /// Source register.
        s: Reg,
    },
    /// Unbox a slot into an `F` register (errors unless the slot holds a
    /// real scalar — type inference guarantees it does).
    SlotToF {
        /// Destination register.
        d: Reg,
        /// Source slot.
        slot: Slot,
    },
    /// Box a `C` scalar into a slot.
    CToSlot {
        /// Destination slot.
        slot: Slot,
        /// Source register.
        s: Reg,
    },
    /// Unbox a numeric scalar slot into a `C` register.
    SlotToC {
        /// Destination register.
        d: Reg,
        /// Source slot.
        slot: Slot,
    },
    /// Copy between slots.
    SlotMov {
        /// Destination slot.
        d: Slot,
        /// Source slot.
        s: Slot,
    },
    /// Move between slots, leaving the source undefined. Emitted when
    /// the source is a dead temporary: under copy-on-write values a
    /// `SlotMov` would leave a second live owner of the buffer, forcing
    /// the next element store to take a full snapshot.
    SlotTake {
        /// Destination slot.
        d: Slot,
        /// Source slot (undefined afterwards).
        s: Slot,
    },

    /// MATLAB truthiness of a slot value (nonempty, all nonzero) → `F`
    /// 0/1.
    TruthF {
        /// Destination (`F`).
        d: Reg,
        /// Tested value.
        slot: Slot,
    },
    /// Extent query into an `F` register: numel (`dim = 0`), rows (`1`)
    /// or cols (`2`).
    ExtentF {
        /// Destination (`F`).
        d: Reg,
        /// Queried array.
        arr: Slot,
        /// Dimension selector.
        dim: u8,
    },

    /// Generic polymorphic operation (see [`GenOp`]).
    Gen {
        /// Operation.
        op: GenOp,
        /// Result slots (calls may produce several).
        dsts: Vec<Slot>,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Raise "undefined function or variable".
    ErrUndefined(String),
}

/// Block terminators.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on an `F` register (nonzero = then).
    Branch {
        /// Condition (`F`, 0.0 = false).
        cond: Reg,
        /// Nonzero target.
        then_bb: BlockId,
        /// Zero target.
        else_bb: BlockId,
    },
    /// Function return.
    Return,
}

/// A basic block.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// Loop metadata recorded by the code generator (used by LICM and by
/// diagnostics).
#[derive(Clone, Debug, PartialEq)]
pub struct LoopInfo {
    /// The block that runs once before the loop.
    pub preheader: BlockId,
    /// The loop header (condition test).
    pub header: BlockId,
    /// All blocks of the loop body, header included.
    pub blocks: Vec<BlockId>,
}

/// Where a function parameter or output lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarBinding {
    /// An `F` register (real scalar variable).
    F(Reg),
    /// A `C` register (complex scalar variable).
    C(Reg),
    /// A whole-value frame slot.
    Slot(Slot),
    /// A spilled `F` value (introduced by register allocation).
    FSpill(u32),
    /// A spilled `C` value (introduced by register allocation).
    CSpill(u32),
}

/// An IR function: blocks plus frame layout metadata.
#[derive(Clone, Debug, Default)]
pub struct Function {
    /// Function name (diagnostics).
    pub name: String,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
    /// Loop metadata.
    pub loops: Vec<LoopInfo>,
    /// Number of virtual `F` registers.
    pub f_regs: u32,
    /// Number of virtual `C` registers.
    pub c_regs: u32,
    /// Number of value slots.
    pub slots: u32,
    /// Parameter bindings, in order.
    pub params: Vec<VarBinding>,
    /// Output bindings, in order.
    pub outputs: Vec<VarBinding>,
}

impl Default for Block {
    fn default() -> Self {
        Block {
            insts: Vec::new(),
            term: Terminator::Return,
        }
    }
}

impl Function {
    /// Count instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

impl Inst {
    /// Is this a pure `F`-class computation (no side effects, result
    /// depends only on `F` inputs)? These are the CSE/LICM/DCE
    /// candidates.
    pub fn pure_f(&self) -> bool {
        matches!(
            self,
            Inst::FConst { .. }
                | Inst::FMov { .. }
                | Inst::FBin { .. }
                | Inst::FUn { .. }
                | Inst::FCmp { .. }
        )
    }

    /// The `F`-class destination register, if any.
    pub fn f_dest(&self) -> Option<Reg> {
        match self {
            Inst::FConst { d, .. }
            | Inst::FMov { d, .. }
            | Inst::FBin { d, .. }
            | Inst::FUn { d, .. }
            | Inst::FCmp { d, .. }
            | Inst::FSpillLoad { d, .. }
            | Inst::CAbs { d, .. }
            | Inst::CPart { d, .. }
            | Inst::ALoadF { d, .. }
            | Inst::ALoadConstF { d, .. }
            | Inst::TruthF { d, .. }
            | Inst::ExtentF { d, .. }
            | Inst::SlotToF { d, .. } => Some(*d),
            _ => None,
        }
    }

    /// `F`-class source registers.
    pub fn f_sources(&self) -> Vec<Reg> {
        match self {
            Inst::FMov { s, .. } | Inst::FUn { s, .. } | Inst::FSpillStore { s, .. } => {
                vec![*s]
            }
            Inst::FBin { a, b, .. } | Inst::FCmp { a, b, .. } => vec![*a, *b],
            Inst::CMake { re, im, .. } => vec![*re, *im],
            Inst::ALoadF { i, j, .. } | Inst::ALoadC { i, j, .. } => {
                let mut v = vec![*i];
                if let Some(j) = j {
                    v.push(*j);
                }
                v
            }
            Inst::AStoreF { i, j, v, .. } => {
                let mut out = vec![*i, *v];
                if let Some(j) = j {
                    out.push(*j);
                }
                out
            }
            Inst::AStoreC { i, j, .. } => {
                let mut out = vec![*i];
                if let Some(j) = j {
                    out.push(*j);
                }
                out
            }
            Inst::AStoreConstF { v, .. }
            | Inst::FToSlot { s: v, .. }
            | Inst::FToSlotBool { s: v, .. } => vec![*v],
            Inst::Gen { args, .. } => args
                .iter()
                .filter_map(|a| match a {
                    Operand::F(r) => Some(*r),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }
}
