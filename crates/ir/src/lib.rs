//! MaJIC's low-level intermediate representation.
//!
//! The paper's JIT builds executable code with the `vcode` dynamic
//! assembler — "a general-purpose, platform-independent RISC-like
//! dynamic assembly language" — through the `tcc` intermediate language
//! ICODE. This crate is our equivalent: a RISC-like register code over
//! three storage classes:
//!
//! * `F` — double-precision scalar registers (the hot class; inlined
//!   scalar arithmetic lives here),
//! * `C` — complex scalar registers,
//! * array *slots* — frame cells holding whole [`majic_runtime::Value`]s
//!   (matrices, strings, and anything the type inferencer could not
//!   specialize).
//!
//! Code is a list of [`Block`]s with explicit terminators plus loop
//! metadata recorded by the code generator; the optimizing backend's
//! passes ([`passes`]) — constant folding, local CSE, loop-invariant
//! code motion, dead-code elimination — run on this form. Register
//! numbers are virtual until `majic-vm`'s linear-scan allocator assigns
//! physical registers and spill slots.

//!
//! The [`serial`] module gives every IR type a canonical binary encoding
//! so compiled functions can persist in the on-disk repository cache
//! (`docs/CACHE_FORMAT.md`).

#![deny(missing_docs)]

mod inst;
pub mod passes;
pub mod serial;

pub use inst::{
    Block, BlockId, CBinOp, CUnOp, CmpOp, FBinOp, FUnOp, Function, GenOp, Inst, LoopInfo, Operand,
    Reg, Slot, Terminator, VarBinding,
};
