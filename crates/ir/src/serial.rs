//! Binary serialization of the IR (instructions, blocks, functions) for
//! the persistent repository cache.
//!
//! Built on the primitive wire layer in [`majic_types::wire`]; the
//! byte-level layout is specified in `docs/CACHE_FORMAT.md`. Every enum
//! is encoded as a one-byte tag in declaration order followed by its
//! fields; renumbering a variant is therefore a format change and must
//! bump [`IR_FORMAT_VERSION`].
//!
//! Decoding is *total and closed*: unknown tags, unknown builtin names,
//! and unknown operator spellings are [`WireError`]s (the cache treats
//! them as corruption and falls back to a cold start), never panics.
//! Generic operators are interned back to the `'static` spellings the
//! executor dispatches on, so a decoded instruction is indistinguishable
//! from a freshly selected one.

use crate::{
    Block, BlockId, CBinOp, CUnOp, CmpOp, FBinOp, FUnOp, Function, GenOp, Inst, LoopInfo, Operand,
    Reg, Slot, Terminator, VarBinding,
};
use majic_runtime::builtins::Builtin;
use majic_types::wire::{Reader, WireError, WireResult, Writer};

/// Version of the IR encoding (instruction set + layout). Bump on any
/// change to the tags or field layouts below; the compiler build
/// fingerprint embeds it, invalidating existing cache files.
pub const IR_FORMAT_VERSION: u32 = 3;

/// The complete set of generic binary-operator spellings the executor
/// understands (see `majic_vm`'s `exec_gen`). Decoding any other string
/// is a wire error.
const BINARY_OPS: &[&str] = &[
    "+", "-", "*", "/", "\\", "^", ".*", "./", ".\\", ".^", "<", "<=", ">", ">=", "==", "~=", "&",
    "|",
];

/// The generic unary-operator spellings.
const UNARY_OPS: &[&str] = &["-", "~", "+"];

fn intern(table: &'static [&'static str], s: &str, what: &'static str) -> WireResult<&'static str> {
    table
        .iter()
        .find(|&&op| op == s)
        .copied()
        .ok_or(WireError { context: what })
}

fn reg(w: &mut Writer, r: Reg) {
    w.u32(r.0);
}

fn rd_reg(r: &mut Reader<'_>) -> WireResult<Reg> {
    Ok(Reg(r.u32()?))
}

fn slot(w: &mut Writer, s: Slot) {
    w.u32(s.0);
}

fn rd_slot(r: &mut Reader<'_>) -> WireResult<Slot> {
    Ok(Slot(r.u32()?))
}

fn opt_reg(w: &mut Writer, r: Option<Reg>) {
    match r {
        None => w.u8(0),
        Some(r) => {
            w.u8(1);
            reg(w, r);
        }
    }
}

fn rd_opt_reg(r: &mut Reader<'_>) -> WireResult<Option<Reg>> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(rd_reg(r)?),
        _ => return Err(WireError::new("option tag")),
    })
}

macro_rules! op_codec {
    ($enc:ident, $dec:ident, $ty:ident, $ctx:literal, [$($variant:ident),+ $(,)?]) => {
        /// Encode the operator as a one-byte tag (declaration order).
        pub fn $enc(w: &mut Writer, v: $ty) {
            let mut tag = 0u8;
            $(
                if matches!(v, $ty::$variant) {
                    w.u8(tag);
                    return;
                }
                #[allow(unused_assignments)]
                { tag += 1; }
            )+
            unreachable!("exhaustive match above");
        }

        /// Decode the operator; out-of-range tags are wire errors.
        pub fn $dec(r: &mut Reader<'_>) -> WireResult<$ty> {
            let got = r.u8()?;
            let mut tag = 0u8;
            $(
                if got == tag {
                    return Ok($ty::$variant);
                }
                #[allow(unused_assignments)]
                { tag += 1; }
            )+
            Err(WireError::new($ctx))
        }
    };
}

op_codec!(
    encode_fbin,
    decode_fbin,
    FBinOp,
    "fbin op tag",
    [Add, Sub, Mul, Div, Pow, Atan2, Min, Max, Mod, Rem]
);
op_codec!(
    encode_fun,
    decode_fun,
    FUnOp,
    "fun op tag",
    [
        Neg, Abs, Sqrt, Sin, Cos, Tan, Asin, Acos, Atan, Exp, Log, Log10, Floor, Ceil, Round, Fix,
        Sign, Not
    ]
);
op_codec!(
    encode_cmp,
    decode_cmp,
    CmpOp,
    "cmp op tag",
    [Lt, Le, Gt, Ge, Eq, Ne]
);
op_codec!(
    encode_cbin,
    decode_cbin,
    CBinOp,
    "cbin op tag",
    [Add, Sub, Mul, Div, Pow]
);
op_codec!(
    encode_cun,
    decode_cun,
    CUnOp,
    "cun op tag",
    [Neg, Conj, Sqrt, Exp, Log, Sin, Cos]
);

/// Encode an [`Operand`].
pub fn encode_operand(w: &mut Writer, v: &Operand) {
    match v {
        Operand::Slot(s) => {
            w.u8(0);
            slot(w, *s);
        }
        Operand::F(r) => {
            w.u8(1);
            reg(w, *r);
        }
        Operand::C(r) => {
            w.u8(2);
            reg(w, *r);
        }
        Operand::FSpill(s) => {
            w.u8(3);
            w.u32(*s);
        }
        Operand::CSpill(s) => {
            w.u8(4);
            w.u32(*s);
        }
        Operand::Str(s) => {
            w.u8(5);
            w.str(s);
        }
        Operand::Colon => w.u8(6),
    }
}

/// Decode an [`Operand`].
pub fn decode_operand(r: &mut Reader<'_>) -> WireResult<Operand> {
    Ok(match r.u8()? {
        0 => Operand::Slot(rd_slot(r)?),
        1 => Operand::F(rd_reg(r)?),
        2 => Operand::C(rd_reg(r)?),
        3 => Operand::FSpill(r.u32()?),
        4 => Operand::CSpill(r.u32()?),
        5 => Operand::Str(r.str()?),
        6 => Operand::Colon,
        _ => return Err(WireError::new("operand tag")),
    })
}

/// Encode a [`GenOp`]. Builtins are written by their MATLAB name (stable
/// across builds even if the `Builtin` enum is reordered).
pub fn encode_genop(w: &mut Writer, v: &GenOp) {
    match v {
        GenOp::Binary(name) => {
            w.u8(0);
            w.str(name);
        }
        GenOp::Unary(name) => {
            w.u8(1);
            w.str(name);
        }
        GenOp::Transpose(conj) => {
            w.u8(2);
            w.bool(*conj);
        }
        GenOp::Range => w.u8(3),
        GenOp::BuildMatrix { rows } => {
            w.u8(4);
            w.u32(rows.len() as u32);
            for &n in rows {
                w.u32(n);
            }
        }
        GenOp::IndexGet => w.u8(5),
        GenOp::IndexSet { oversize } => {
            w.u8(6);
            w.bool(*oversize);
        }
        GenOp::CallBuiltin(b) => {
            w.u8(7);
            w.str(b.name());
        }
        GenOp::CallUser(name) => {
            w.u8(8);
            w.str(name);
        }
        GenOp::ResolveAmbiguous(name) => {
            w.u8(9);
            w.str(name);
        }
        GenOp::Gemv => w.u8(10),
        GenOp::AllocReal { rows, cols } => {
            w.u8(11);
            w.u32(*rows);
            w.u32(*cols);
        }
        GenOp::EnsureReal { rows, cols } => {
            w.u8(12);
            w.u32(*rows);
            w.u32(*cols);
        }
        GenOp::Display(name) => {
            w.u8(13);
            w.str(name);
        }
    }
}

/// Decode a [`GenOp`]; unknown builtin names and operator spellings are
/// wire errors.
pub fn decode_genop(r: &mut Reader<'_>) -> WireResult<GenOp> {
    Ok(match r.u8()? {
        0 => GenOp::Binary(intern(BINARY_OPS, &r.str()?, "binary operator name")?),
        1 => GenOp::Unary(intern(UNARY_OPS, &r.str()?, "unary operator name")?),
        2 => GenOp::Transpose(r.bool()?),
        3 => GenOp::Range,
        4 => {
            let n = r.seq_len(4)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.u32()?);
            }
            GenOp::BuildMatrix { rows }
        }
        5 => GenOp::IndexGet,
        6 => GenOp::IndexSet {
            oversize: r.bool()?,
        },
        7 => GenOp::CallBuiltin(
            Builtin::lookup(&r.str()?).ok_or(WireError::new("unknown builtin name"))?,
        ),
        8 => GenOp::CallUser(r.str()?),
        9 => GenOp::ResolveAmbiguous(r.str()?),
        10 => GenOp::Gemv,
        11 => GenOp::AllocReal {
            rows: r.u32()?,
            cols: r.u32()?,
        },
        12 => GenOp::EnsureReal {
            rows: r.u32()?,
            cols: r.u32()?,
        },
        13 => GenOp::Display(r.str()?),
        _ => return Err(WireError::new("genop tag")),
    })
}

/// Encode one [`Inst`] (tag in declaration order + fields).
pub fn encode_inst(w: &mut Writer, v: &Inst) {
    match v {
        Inst::FConst { d, v } => {
            w.u8(0);
            reg(w, *d);
            w.f64(*v);
        }
        Inst::FMov { d, s } => {
            w.u8(1);
            reg(w, *d);
            reg(w, *s);
        }
        Inst::FBin { op, d, a, b } => {
            w.u8(2);
            encode_fbin(w, *op);
            reg(w, *d);
            reg(w, *a);
            reg(w, *b);
        }
        Inst::FUn { op, d, s } => {
            w.u8(3);
            encode_fun(w, *op);
            reg(w, *d);
            reg(w, *s);
        }
        Inst::FCmp { op, d, a, b } => {
            w.u8(4);
            encode_cmp(w, *op);
            reg(w, *d);
            reg(w, *a);
            reg(w, *b);
        }
        Inst::FSpillLoad { d, slot } => {
            w.u8(5);
            reg(w, *d);
            w.u32(*slot);
        }
        Inst::FSpillStore { slot, s } => {
            w.u8(6);
            w.u32(*slot);
            reg(w, *s);
        }
        Inst::CConst { d, re, im } => {
            w.u8(7);
            reg(w, *d);
            w.f64(*re);
            w.f64(*im);
        }
        Inst::CMov { d, s } => {
            w.u8(8);
            reg(w, *d);
            reg(w, *s);
        }
        Inst::CBin { op, d, a, b } => {
            w.u8(9);
            encode_cbin(w, *op);
            reg(w, *d);
            reg(w, *a);
            reg(w, *b);
        }
        Inst::CUn { op, d, s } => {
            w.u8(10);
            encode_cun(w, *op);
            reg(w, *d);
            reg(w, *s);
        }
        Inst::CAbs { d, s } => {
            w.u8(11);
            reg(w, *d);
            reg(w, *s);
        }
        Inst::CPart { d, s, imag } => {
            w.u8(12);
            reg(w, *d);
            reg(w, *s);
            w.bool(*imag);
        }
        Inst::CMake { d, re, im } => {
            w.u8(13);
            reg(w, *d);
            reg(w, *re);
            reg(w, *im);
        }
        Inst::CSpillLoad { d, slot } => {
            w.u8(14);
            reg(w, *d);
            w.u32(*slot);
        }
        Inst::CSpillStore { slot, s } => {
            w.u8(15);
            w.u32(*slot);
            reg(w, *s);
        }
        Inst::ALoadF {
            d,
            arr,
            i,
            j,
            checked,
        } => {
            w.u8(16);
            reg(w, *d);
            slot(w, *arr);
            reg(w, *i);
            opt_reg(w, *j);
            w.bool(*checked);
        }
        Inst::AStoreF {
            arr,
            i,
            j,
            v,
            checked,
            oversize,
        } => {
            w.u8(17);
            slot(w, *arr);
            reg(w, *i);
            opt_reg(w, *j);
            reg(w, *v);
            w.bool(*checked);
            w.bool(*oversize);
        }
        Inst::ALoadC {
            d,
            arr,
            i,
            j,
            checked,
        } => {
            w.u8(18);
            reg(w, *d);
            slot(w, *arr);
            reg(w, *i);
            opt_reg(w, *j);
            w.bool(*checked);
        }
        Inst::AStoreC {
            arr,
            i,
            j,
            v,
            checked,
            oversize,
        } => {
            w.u8(19);
            slot(w, *arr);
            reg(w, *i);
            opt_reg(w, *j);
            reg(w, *v);
            w.bool(*checked);
            w.bool(*oversize);
        }
        Inst::ALoadConstF { d, arr, lin } => {
            w.u8(20);
            reg(w, *d);
            slot(w, *arr);
            w.u32(*lin);
        }
        Inst::AStoreConstF { arr, lin, v } => {
            w.u8(21);
            slot(w, *arr);
            w.u32(*lin);
            reg(w, *v);
        }
        Inst::FToSlot { slot: s, s: src } => {
            w.u8(22);
            slot(w, *s);
            reg(w, *src);
        }
        Inst::SlotToF { d, slot: s } => {
            w.u8(23);
            reg(w, *d);
            slot(w, *s);
        }
        Inst::CToSlot { slot: s, s: src } => {
            w.u8(24);
            slot(w, *s);
            reg(w, *src);
        }
        Inst::SlotToC { d, slot: s } => {
            w.u8(25);
            reg(w, *d);
            slot(w, *s);
        }
        Inst::SlotMov { d, s } => {
            w.u8(26);
            slot(w, *d);
            slot(w, *s);
        }
        Inst::TruthF { d, slot: s } => {
            w.u8(27);
            reg(w, *d);
            slot(w, *s);
        }
        Inst::ExtentF { d, arr, dim } => {
            w.u8(28);
            reg(w, *d);
            slot(w, *arr);
            w.u8(*dim);
        }
        Inst::Gen { op, dsts, args } => {
            w.u8(29);
            encode_genop(w, op);
            w.u32(dsts.len() as u32);
            for d in dsts {
                slot(w, *d);
            }
            w.u32(args.len() as u32);
            for a in args {
                encode_operand(w, a);
            }
        }
        Inst::ErrUndefined(name) => {
            w.u8(30);
            w.str(name);
        }
        Inst::FToSlotBool { slot: s, s: src } => {
            w.u8(31);
            slot(w, *s);
            reg(w, *src);
        }
        Inst::SlotTake { d, s } => {
            w.u8(32);
            slot(w, *d);
            slot(w, *s);
        }
    }
}

/// Decode one [`Inst`].
pub fn decode_inst(r: &mut Reader<'_>) -> WireResult<Inst> {
    Ok(match r.u8()? {
        0 => Inst::FConst {
            d: rd_reg(r)?,
            v: r.f64()?,
        },
        1 => Inst::FMov {
            d: rd_reg(r)?,
            s: rd_reg(r)?,
        },
        2 => Inst::FBin {
            op: decode_fbin(r)?,
            d: rd_reg(r)?,
            a: rd_reg(r)?,
            b: rd_reg(r)?,
        },
        3 => Inst::FUn {
            op: decode_fun(r)?,
            d: rd_reg(r)?,
            s: rd_reg(r)?,
        },
        4 => Inst::FCmp {
            op: decode_cmp(r)?,
            d: rd_reg(r)?,
            a: rd_reg(r)?,
            b: rd_reg(r)?,
        },
        5 => Inst::FSpillLoad {
            d: rd_reg(r)?,
            slot: r.u32()?,
        },
        6 => Inst::FSpillStore {
            slot: r.u32()?,
            s: rd_reg(r)?,
        },
        7 => Inst::CConst {
            d: rd_reg(r)?,
            re: r.f64()?,
            im: r.f64()?,
        },
        8 => Inst::CMov {
            d: rd_reg(r)?,
            s: rd_reg(r)?,
        },
        9 => Inst::CBin {
            op: decode_cbin(r)?,
            d: rd_reg(r)?,
            a: rd_reg(r)?,
            b: rd_reg(r)?,
        },
        10 => Inst::CUn {
            op: decode_cun(r)?,
            d: rd_reg(r)?,
            s: rd_reg(r)?,
        },
        11 => Inst::CAbs {
            d: rd_reg(r)?,
            s: rd_reg(r)?,
        },
        12 => Inst::CPart {
            d: rd_reg(r)?,
            s: rd_reg(r)?,
            imag: r.bool()?,
        },
        13 => Inst::CMake {
            d: rd_reg(r)?,
            re: rd_reg(r)?,
            im: rd_reg(r)?,
        },
        14 => Inst::CSpillLoad {
            d: rd_reg(r)?,
            slot: r.u32()?,
        },
        15 => Inst::CSpillStore {
            slot: r.u32()?,
            s: rd_reg(r)?,
        },
        16 => Inst::ALoadF {
            d: rd_reg(r)?,
            arr: rd_slot(r)?,
            i: rd_reg(r)?,
            j: rd_opt_reg(r)?,
            checked: r.bool()?,
        },
        17 => Inst::AStoreF {
            arr: rd_slot(r)?,
            i: rd_reg(r)?,
            j: rd_opt_reg(r)?,
            v: rd_reg(r)?,
            checked: r.bool()?,
            oversize: r.bool()?,
        },
        18 => Inst::ALoadC {
            d: rd_reg(r)?,
            arr: rd_slot(r)?,
            i: rd_reg(r)?,
            j: rd_opt_reg(r)?,
            checked: r.bool()?,
        },
        19 => Inst::AStoreC {
            arr: rd_slot(r)?,
            i: rd_reg(r)?,
            j: rd_opt_reg(r)?,
            v: rd_reg(r)?,
            checked: r.bool()?,
            oversize: r.bool()?,
        },
        20 => Inst::ALoadConstF {
            d: rd_reg(r)?,
            arr: rd_slot(r)?,
            lin: r.u32()?,
        },
        21 => Inst::AStoreConstF {
            arr: rd_slot(r)?,
            lin: r.u32()?,
            v: rd_reg(r)?,
        },
        22 => Inst::FToSlot {
            slot: rd_slot(r)?,
            s: rd_reg(r)?,
        },
        23 => Inst::SlotToF {
            d: rd_reg(r)?,
            slot: rd_slot(r)?,
        },
        24 => Inst::CToSlot {
            slot: rd_slot(r)?,
            s: rd_reg(r)?,
        },
        25 => Inst::SlotToC {
            d: rd_reg(r)?,
            slot: rd_slot(r)?,
        },
        26 => Inst::SlotMov {
            d: rd_slot(r)?,
            s: rd_slot(r)?,
        },
        27 => Inst::TruthF {
            d: rd_reg(r)?,
            slot: rd_slot(r)?,
        },
        28 => Inst::ExtentF {
            d: rd_reg(r)?,
            arr: rd_slot(r)?,
            dim: r.u8()?,
        },
        29 => {
            let op = decode_genop(r)?;
            let nd = r.seq_len(4)?;
            let mut dsts = Vec::with_capacity(nd);
            for _ in 0..nd {
                dsts.push(rd_slot(r)?);
            }
            let na = r.seq_len(1)?;
            let mut args = Vec::with_capacity(na);
            for _ in 0..na {
                args.push(decode_operand(r)?);
            }
            Inst::Gen { op, dsts, args }
        }
        30 => Inst::ErrUndefined(r.str()?),
        31 => Inst::FToSlotBool {
            slot: rd_slot(r)?,
            s: rd_reg(r)?,
        },
        32 => Inst::SlotTake {
            d: rd_slot(r)?,
            s: rd_slot(r)?,
        },
        _ => return Err(WireError::new("inst tag")),
    })
}

/// Encode a [`Terminator`].
pub fn encode_terminator(w: &mut Writer, v: &Terminator) {
    match v {
        Terminator::Jump(t) => {
            w.u8(0);
            w.u32(t.0);
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            w.u8(1);
            reg(w, *cond);
            w.u32(then_bb.0);
            w.u32(else_bb.0);
        }
        Terminator::Return => w.u8(2),
    }
}

/// Decode a [`Terminator`].
pub fn decode_terminator(r: &mut Reader<'_>) -> WireResult<Terminator> {
    Ok(match r.u8()? {
        0 => Terminator::Jump(BlockId(r.u32()?)),
        1 => Terminator::Branch {
            cond: rd_reg(r)?,
            then_bb: BlockId(r.u32()?),
            else_bb: BlockId(r.u32()?),
        },
        2 => Terminator::Return,
        _ => return Err(WireError::new("terminator tag")),
    })
}

/// Encode a [`VarBinding`].
pub fn encode_binding(w: &mut Writer, v: VarBinding) {
    match v {
        VarBinding::F(r) => {
            w.u8(0);
            reg(w, r);
        }
        VarBinding::C(r) => {
            w.u8(1);
            reg(w, r);
        }
        VarBinding::Slot(s) => {
            w.u8(2);
            slot(w, s);
        }
        VarBinding::FSpill(s) => {
            w.u8(3);
            w.u32(s);
        }
        VarBinding::CSpill(s) => {
            w.u8(4);
            w.u32(s);
        }
    }
}

/// Decode a [`VarBinding`].
pub fn decode_binding(r: &mut Reader<'_>) -> WireResult<VarBinding> {
    Ok(match r.u8()? {
        0 => VarBinding::F(rd_reg(r)?),
        1 => VarBinding::C(rd_reg(r)?),
        2 => VarBinding::Slot(rd_slot(r)?),
        3 => VarBinding::FSpill(r.u32()?),
        4 => VarBinding::CSpill(r.u32()?),
        _ => return Err(WireError::new("binding tag")),
    })
}

/// Encode a [`Block`].
pub fn encode_block(w: &mut Writer, v: &Block) {
    w.u32(v.insts.len() as u32);
    for i in &v.insts {
        encode_inst(w, i);
    }
    encode_terminator(w, &v.term);
}

/// Decode a [`Block`].
pub fn decode_block(r: &mut Reader<'_>) -> WireResult<Block> {
    let n = r.seq_len(1)?;
    let mut insts = Vec::with_capacity(n);
    for _ in 0..n {
        insts.push(decode_inst(r)?);
    }
    Ok(Block {
        insts,
        term: decode_terminator(r)?,
    })
}

/// Encode a full IR [`Function`] (blocks, loop metadata, frame layout).
pub fn encode_function(w: &mut Writer, v: &Function) {
    w.str(&v.name);
    w.u32(v.blocks.len() as u32);
    for b in &v.blocks {
        encode_block(w, b);
    }
    w.u32(v.loops.len() as u32);
    for l in &v.loops {
        w.u32(l.preheader.0);
        w.u32(l.header.0);
        w.u32(l.blocks.len() as u32);
        for b in &l.blocks {
            w.u32(b.0);
        }
    }
    w.u32(v.f_regs);
    w.u32(v.c_regs);
    w.u32(v.slots);
    w.u32(v.params.len() as u32);
    for p in &v.params {
        encode_binding(w, *p);
    }
    w.u32(v.outputs.len() as u32);
    for o in &v.outputs {
        encode_binding(w, *o);
    }
}

/// Decode a full IR [`Function`].
pub fn decode_function(r: &mut Reader<'_>) -> WireResult<Function> {
    let name = r.str()?;
    let nb = r.seq_len(1)?;
    let mut blocks = Vec::with_capacity(nb);
    for _ in 0..nb {
        blocks.push(decode_block(r)?);
    }
    let nl = r.seq_len(1)?;
    let mut loops = Vec::with_capacity(nl);
    for _ in 0..nl {
        let preheader = BlockId(r.u32()?);
        let header = BlockId(r.u32()?);
        let n = r.seq_len(4)?;
        let mut lblocks = Vec::with_capacity(n);
        for _ in 0..n {
            lblocks.push(BlockId(r.u32()?));
        }
        loops.push(LoopInfo {
            preheader,
            header,
            blocks: lblocks,
        });
    }
    let f_regs = r.u32()?;
    let c_regs = r.u32()?;
    let slots = r.u32()?;
    let np = r.seq_len(1)?;
    let mut params = Vec::with_capacity(np);
    for _ in 0..np {
        params.push(decode_binding(r)?);
    }
    let no = r.seq_len(1)?;
    let mut outputs = Vec::with_capacity(no);
    for _ in 0..no {
        outputs.push(decode_binding(r)?);
    }
    Ok(Function {
        name,
        blocks,
        loops,
        f_regs,
        c_regs,
        slots,
        params,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_inst(i: &Inst) {
        let mut w = Writer::new();
        encode_inst(&mut w, i);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_inst(&mut r).unwrap();
        assert!(r.is_empty(), "trailing bytes after {i:?}");
        assert_eq!(&back, i);
        // Canonical: re-encoding reproduces the same bytes.
        let mut w2 = Writer::new();
        encode_inst(&mut w2, &back);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn every_inst_shape_round_trips() {
        let samples = vec![
            Inst::FConst {
                d: Reg(1),
                v: f64::NEG_INFINITY,
            },
            Inst::FMov {
                d: Reg(0),
                s: Reg(3),
            },
            Inst::FBin {
                op: FBinOp::Atan2,
                d: Reg(1),
                a: Reg(2),
                b: Reg(3),
            },
            Inst::FUn {
                op: FUnOp::Log10,
                d: Reg(0),
                s: Reg(1),
            },
            Inst::FCmp {
                op: CmpOp::Ne,
                d: Reg(0),
                a: Reg(1),
                b: Reg(2),
            },
            Inst::FSpillLoad { d: Reg(0), slot: 9 },
            Inst::FSpillStore { slot: 4, s: Reg(2) },
            Inst::CConst {
                d: Reg(0),
                re: 1.5,
                im: -2.5,
            },
            Inst::CMov {
                d: Reg(0),
                s: Reg(1),
            },
            Inst::CBin {
                op: CBinOp::Pow,
                d: Reg(0),
                a: Reg(1),
                b: Reg(2),
            },
            Inst::CUn {
                op: CUnOp::Conj,
                d: Reg(0),
                s: Reg(1),
            },
            Inst::CAbs {
                d: Reg(0),
                s: Reg(1),
            },
            Inst::CPart {
                d: Reg(0),
                s: Reg(1),
                imag: true,
            },
            Inst::CMake {
                d: Reg(0),
                re: Reg(1),
                im: Reg(2),
            },
            Inst::CSpillLoad { d: Reg(0), slot: 1 },
            Inst::CSpillStore { slot: 0, s: Reg(1) },
            Inst::ALoadF {
                d: Reg(0),
                arr: Slot(1),
                i: Reg(2),
                j: Some(Reg(3)),
                checked: false,
            },
            Inst::AStoreF {
                arr: Slot(0),
                i: Reg(1),
                j: None,
                v: Reg(2),
                checked: true,
                oversize: true,
            },
            Inst::ALoadC {
                d: Reg(0),
                arr: Slot(0),
                i: Reg(1),
                j: None,
                checked: true,
            },
            Inst::AStoreC {
                arr: Slot(0),
                i: Reg(1),
                j: Some(Reg(2)),
                v: Reg(3),
                checked: false,
                oversize: false,
            },
            Inst::ALoadConstF {
                d: Reg(0),
                arr: Slot(1),
                lin: 8,
            },
            Inst::AStoreConstF {
                arr: Slot(0),
                lin: 2,
                v: Reg(1),
            },
            Inst::FToSlot {
                slot: Slot(0),
                s: Reg(1),
            },
            Inst::FToSlotBool {
                slot: Slot(2),
                s: Reg(3),
            },
            Inst::SlotToF {
                d: Reg(0),
                slot: Slot(1),
            },
            Inst::CToSlot {
                slot: Slot(0),
                s: Reg(1),
            },
            Inst::SlotToC {
                d: Reg(0),
                slot: Slot(1),
            },
            Inst::SlotMov {
                d: Slot(0),
                s: Slot(1),
            },
            Inst::SlotTake {
                d: Slot(0),
                s: Slot(1),
            },
            Inst::TruthF {
                d: Reg(0),
                slot: Slot(1),
            },
            Inst::ExtentF {
                d: Reg(0),
                arr: Slot(1),
                dim: 2,
            },
            Inst::Gen {
                op: GenOp::Binary("+"),
                dsts: vec![Slot(0)],
                args: vec![Operand::Slot(Slot(1)), Operand::F(Reg(2))],
            },
            Inst::Gen {
                op: GenOp::CallBuiltin(Builtin::lookup("zeros").unwrap()),
                dsts: vec![Slot(0)],
                args: vec![Operand::F(Reg(0)), Operand::Str("x".into()), Operand::Colon],
            },
            Inst::Gen {
                op: GenOp::BuildMatrix { rows: vec![2, 2] },
                dsts: vec![Slot(0)],
                args: vec![
                    Operand::FSpill(1),
                    Operand::CSpill(2),
                    Operand::C(Reg(0)),
                    Operand::Slot(Slot(1)),
                ],
            },
            Inst::ErrUndefined("whom".into()),
        ];
        for i in &samples {
            round_trip_inst(i);
        }
    }

    #[test]
    fn interned_operators_round_trip() {
        for op in BINARY_OPS {
            let mut w = Writer::new();
            encode_genop(&mut w, &GenOp::Binary(op));
            let bytes = w.into_bytes();
            let back = decode_genop(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back, GenOp::Binary(op));
        }
        for op in UNARY_OPS {
            let mut w = Writer::new();
            encode_genop(&mut w, &GenOp::Unary(op));
            let bytes = w.into_bytes();
            let back = decode_genop(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back, GenOp::Unary(op));
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        let mut w = Writer::new();
        w.u8(0); // Binary
        w.str("<=>");
        assert!(decode_genop(&mut Reader::new(&w.into_bytes())).is_err());

        let mut w = Writer::new();
        w.u8(7); // CallBuiltin
        w.str("no_such_builtin");
        assert!(decode_genop(&mut Reader::new(&w.into_bytes())).is_err());
    }

    #[test]
    fn function_round_trips() {
        let f = Function {
            name: "probe".into(),
            blocks: vec![
                Block {
                    insts: vec![Inst::FConst { d: Reg(0), v: 1.0 }],
                    term: Terminator::Branch {
                        cond: Reg(0),
                        then_bb: BlockId(1),
                        else_bb: BlockId(1),
                    },
                },
                Block {
                    insts: vec![],
                    term: Terminator::Return,
                },
            ],
            loops: vec![LoopInfo {
                preheader: BlockId(0),
                header: BlockId(1),
                blocks: vec![BlockId(1)],
            }],
            f_regs: 3,
            c_regs: 1,
            slots: 2,
            params: vec![VarBinding::F(Reg(0)), VarBinding::Slot(Slot(0))],
            outputs: vec![VarBinding::CSpill(3)],
        };
        let mut w = Writer::new();
        encode_function(&mut w, &f);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_function(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.name, f.name);
        assert_eq!(back.blocks, f.blocks);
        assert_eq!(back.loops, f.loops);
        assert_eq!(back.params, f.params);
        assert_eq!(back.outputs, f.outputs);
        assert_eq!(
            (back.f_regs, back.c_regs, back.slots),
            (f.f_regs, f.c_regs, f.slots)
        );
    }
}
